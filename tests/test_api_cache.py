"""_LruTable eviction policy and PrecomputeCache.stats() accounting."""

import pytest

from repro.api import PrecomputeCache
from repro.api.cache import _LruTable
from repro.graphs import generators as gen


class TestLruTable:
    def test_hit_miss_counters(self):
        t = _LruTable(maxsize=4)
        calls = []
        assert t.get_or_compute("a", lambda: calls.append("a") or 1) == 1
        assert t.get_or_compute("a", lambda: calls.append("a") or 1) == 1
        assert t.get_or_compute("b", lambda: calls.append("b") or 2) == 2
        assert (t.hits, t.misses) == (1, 2)
        assert calls == ["a", "b"]  # the hit recomputed nothing

    def test_eviction_under_maxsize_pressure(self):
        t = _LruTable(maxsize=2)
        for key in ("a", "b", "c"):
            t.get_or_compute(key, lambda key=key: key.upper())
        assert len(t.entries) == 2
        assert "a" not in t.entries  # oldest evicted first
        assert list(t.entries) == ["b", "c"]

    def test_lru_order_refreshes_on_hit(self):
        t = _LruTable(maxsize=2)
        t.get_or_compute("a", lambda: 1)
        t.get_or_compute("b", lambda: 2)
        t.get_or_compute("a", lambda: 1)  # refresh "a"
        t.get_or_compute("c", lambda: 3)  # evicts "b", not "a"
        assert set(t.entries) == {"a", "c"}

    def test_evicted_entry_is_a_fresh_miss(self):
        t = _LruTable(maxsize=1)
        t.get_or_compute("a", lambda: 1)
        t.get_or_compute("b", lambda: 2)
        recomputed = []
        t.get_or_compute("a", lambda: recomputed.append(1) or 1)
        assert recomputed == [1]
        assert (t.hits, t.misses) == (0, 3)

    def test_clear_resets_entries_and_counters(self):
        t = _LruTable(maxsize=4)
        t.get_or_compute("a", lambda: 1)
        t.get_or_compute("a", lambda: 1)
        t.clear()
        assert (t.hits, t.misses, t.store_hits) == (0, 0, 0)
        assert len(t.entries) == 0

    def test_store_hit_skips_compute_and_persist(self):
        t = _LruTable(maxsize=4)
        persisted = []
        value = t.get_or_compute(
            "k", lambda: pytest.fail("computed despite store hit"),
            load=lambda: "from-disk", persist=persisted.append,
        )
        assert value == "from-disk"
        assert (t.misses, t.store_hits) == (1, 1)
        assert persisted == []  # nothing new to write back

    def test_store_miss_computes_and_persists(self):
        t = _LruTable(maxsize=4)
        persisted = []
        value = t.get_or_compute(
            "k", lambda: "computed", load=lambda: None, persist=persisted.append
        )
        assert value == "computed"
        assert (t.misses, t.store_hits) == (1, 0)
        assert persisted == ["computed"]


class TestPrecomputeCacheStats:
    def test_stats_shape_without_store(self):
        """Memory-only caches keep the original three-key stats shape."""
        cache = PrecomputeCache()
        for row in cache.stats().values():
            assert set(row) == {"hits", "misses", "size"}

    def test_stats_shape_with_store(self, tmp_path):
        from repro.api import ArtifactStore

        cache = PrecomputeCache(store=ArtifactStore(tmp_path))
        for row in cache.stats().values():
            assert set(row) == {"hits", "misses", "size", "store_hits", "computed"}

    def test_stats_track_category_traffic(self):
        g = gen.grid_2d(5, 5)
        cache = PrecomputeCache()
        order = cache.order(g, "degeneracy", 1)
        cache.order(g, "degeneracy", 1)
        cache.wreach_csr(g, order, 2)
        cache.wcol(g, order, 2)  # derives from the cached CSR
        st = cache.stats()
        assert st["order"] == {"hits": 1, "misses": 1, "size": 1}
        assert st["wreach_csr"]["misses"] == 1
        assert st["wreach_csr"]["hits"] == 1  # wcol's read of the CSR
        assert st["wcol"]["misses"] == 1

    def test_maxsize_pressure_on_real_categories(self):
        cache = PrecomputeCache(maxsize=2)
        graphs = [gen.path_graph(n) for n in (5, 6, 7)]
        for g in graphs:
            cache.order(g, "degeneracy", 1)
        st = cache.stats()["order"]
        assert st["size"] == 2 and st["misses"] == 3
        cache.order(graphs[0], "degeneracy", 1)  # evicted -> fresh miss
        assert cache.stats()["order"]["misses"] == 4

    def test_clear_resets_every_category(self):
        g = gen.grid_2d(4, 4)
        cache = PrecomputeCache()
        order = cache.order(g, "degeneracy", 1)
        cache.wreach_csr(g, order, 2)
        cache.clear()
        for row in cache.stats().values():
            assert row == {"hits": 0, "misses": 0, "size": 0}
