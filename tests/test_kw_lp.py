"""KW-style distributed LP + rounding baseline."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.exact import lp_lower_bound
from repro.distributed.kw_lp import kw_lp_domset
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_output_dominates(small_graph, radius):
    res = kw_lp_domset(small_graph, radius, seed=1)
    assert is_distance_r_dominating_set(small_graph, res.dominators, radius)


def test_fractional_cost_sane():
    """The fractional stage is feasible, so its cost >= LP optimum."""
    for g in (gen.grid_2d(6, 6), delaunay_graph(80, seed=2)[0]):
        res = kw_lp_domset(g, 1, seed=0)
        lp = lp_lower_bound(g, 1)
        assert res.fractional_cost >= lp - 1e-9


def test_fractional_cost_not_too_loose():
    """Threshold sweeping keeps the fractional cost near O(log) of LP."""
    g = gen.grid_2d(8, 8)
    res = kw_lp_domset(g, 1, seed=0)
    lp = lp_lower_bound(g, 1)
    import math

    assert res.fractional_cost <= 4 * math.log(g.n + 1) * max(lp, 1.0)


def test_deterministic_by_seed():
    g = gen.grid_2d(6, 6)
    a = kw_lp_domset(g, 1, seed=5)
    b = kw_lp_domset(g, 1, seed=5)
    assert a.dominators == b.dominators


def test_counts_add_up():
    g, _ = delaunay_graph(70, seed=4)
    res = kw_lp_domset(g, 1, seed=3)
    assert res.rounded + res.fixed_up >= res.size  # overlap possible
    assert res.size >= 1
    assert res.phases >= 1
    assert res.raise_rounds >= 1
    assert res.local_rounds == (res.raise_rounds + 1) * 3


def test_star_cheap():
    g = gen.star_graph(15)
    res = kw_lp_domset(g, 1, seed=0)
    assert res.size <= 3  # center carries nearly all LP mass


def test_quality_reasonable_vs_lp():
    g, _ = delaunay_graph(150, seed=6)
    res = kw_lp_domset(g, 1, seed=1)
    lp = lp_lower_bound(g, 1)
    assert res.size <= 8 * max(lp, 1.0)  # O(log Delta)-ish, generous


def test_empty_graph():
    res = kw_lp_domset(from_edges(0, []), 1)
    assert res.dominators == ()


def test_rejects_negative_radius():
    with pytest.raises(GraphError):
        kw_lp_domset(gen.path_graph(3), -1)
