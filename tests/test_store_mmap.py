"""Memory-mapped ArtifactStore loads.

Contract: ``ArtifactStore(root, mmap=True)`` serves every artifact as a
read-only memory map that is *bit-identical* to the full-read load —
solver outputs over mmap'd artifacts match the in-memory ones exactly —
and a truncated or partially-written file is a miss in both modes, even
when the corruption sits past the headers, mid-array.
"""

import numpy as np
import pytest

from repro.api import ArtifactStore, PrecomputeCache, graph_digest, order_digest
from repro.api.workspace import Workspace
from repro.core.domset import domset_by_wreach
from repro.core.rdomset_orient import rdomset_orient
from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import RankedAdjacency, wreach_csr

PARITY = [
    ("grid", lambda: gen.grid_2d(7, 7)),
    ("ktree", lambda: gen.k_tree(600, 3, seed=5)),
    ("delaunay", lambda: rm.delaunay_graph(620, seed=3)[0]),
]


@pytest.fixture(params=PARITY, ids=[name for name, _ in PARITY])
def instance(request):
    return request.param[1]()


def _warmed(tmp_path, g):
    """A store holding g's Theorem-5 artifacts; returns (gd, od, order, csr)."""
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    order, _ = degeneracy_order(g)
    od = order_digest(order)
    store.put_order(gd, "degeneracy", 2, order)
    adj = RankedAdjacency(g, order)
    store.put_rank_adj(gd, od, adj)
    csr = wreach_csr(g, order, 2, adj=adj)
    store.put_wreach(gd, od, 2, csr)
    return gd, od, order, csr


def test_mmap_loads_are_bit_identical(tmp_path, instance):
    g = instance
    gd, od, order, csr = _warmed(tmp_path, g)
    mm = ArtifactStore(tmp_path, mmap=True)

    g2 = mm.get_graph(gd)
    assert g2 == g
    assert isinstance(g2.indices, np.memmap)
    o2 = mm.get_order(gd, "degeneracy", 2, n=g.n)
    assert np.array_equal(o2.rank, order.rank)
    a2 = mm.get_rank_adj(gd, od, g2, o2)
    assert np.array_equal(a2.nbrs, RankedAdjacency(g, order).nbrs)
    c2 = mm.get_wreach(gd, od, 2, g2, o2)
    assert np.array_equal(c2.indptr, csr.indptr)
    assert np.array_equal(c2.members, csr.members)


def test_mmap_solver_outputs_match_in_memory(tmp_path, instance):
    """Acceptance: solving over mmap-loaded artifacts is bit-identical."""
    g = instance
    gd, od, order, csr = _warmed(tmp_path, g)
    mm = ArtifactStore(tmp_path, mmap=True)
    g2 = mm.get_graph(gd)
    o2 = mm.get_order(gd, "degeneracy", 2, n=g.n)
    c2 = mm.get_wreach(gd, od, 2, g2, o2)
    a2 = mm.get_rank_adj(gd, od, g2, o2)

    ref = domset_by_wreach(g, order, 2, csr=csr)
    got = domset_by_wreach(g2, o2, 2, csr=c2)
    assert got.dominators == ref.dominators
    assert np.array_equal(got.dominator_of, ref.dominator_of)

    ref_orient = rdomset_orient(g, order, 2)
    got_orient = rdomset_orient(g2, o2, 2, adj=a2)
    assert got_orient.dominators == ref_orient.dominators
    assert np.array_equal(got_orient.dominator_of, ref_orient.dominator_of)


@pytest.mark.parametrize("mmap", [False, True], ids=["full", "mmap"])
def test_truncated_mid_array_is_miss(tmp_path, mmap):
    """Corrupt an artifact mid-array (past the zip/npy headers): miss."""
    g = gen.k_tree(600, 3, seed=5)
    gd, od, order, _ = _warmed(tmp_path, g)
    store = ArtifactStore(tmp_path, mmap=mmap)
    path = store._wreach_path(gd, od, 2)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 256])  # cut inside the members array
    assert store.get_wreach(gd, od, 2, g, order) is None
    gpath = store._graph_path(gd)
    raw = gpath.read_bytes()
    gpath.write_bytes(raw[: int(len(raw) * 0.6)])
    assert store.get_graph(gd) is None


def test_mmap_rejects_compressed_member(tmp_path):
    """A compressed archive can't be mapped: miss, not garbage."""
    g = gen.grid_2d(5, 5)
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    path = store._graph_path(gd)
    with np.load(path) as data:
        arrays = dict(data)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    mm = ArtifactStore(tmp_path, mmap=True)
    assert mm.get_graph(gd) is None
    # the full-read path still accepts it (np.load decompresses)
    assert ArtifactStore(tmp_path).get_graph(gd) == g


def test_mmap_env_var_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_MMAP", "1")
    assert ArtifactStore(tmp_path).mmap
    monkeypatch.setenv("REPRO_STORE_MMAP", "0")
    assert not ArtifactStore(tmp_path).mmap
    assert ArtifactStore(tmp_path, mmap=True).mmap


def test_workspace_over_mmap_store_warm_solve(tmp_path, instance):
    """End-to-end: warm with a full store, solve through an mmap one."""
    g = instance
    with Workspace(store=ArtifactStore(tmp_path)) as ws:
        ws.warm(g, radius=2)
        ref = ws.solve(g, 2, "seq.wreach-min")
    mm = ArtifactStore(tmp_path, mmap=True)
    with Workspace(cache=PrecomputeCache(store=mm)) as ws2:
        digest = graph_digest(g)
        g2 = ws2.graph(digest)
        assert isinstance(g2.indices, np.memmap)
        got = ws2.solve(g2, 2, "seq.wreach-min")
    assert got.dominators == ref.dominators
    stats = ws2.cache.stats()
    assert sum(c.get("store_hits", 0) for c in stats.values()) >= 2
