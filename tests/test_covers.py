"""Theorem 4: sparse r-neighborhood covers."""

import numpy as np
import pytest

from repro.analysis.validate import validate_cover
from repro.core.covers import build_cover, cover_stats
from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.traversal import ball, induced_radius
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


@pytest.mark.parametrize("radius", [1, 2])
def test_cover_is_valid(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    cover = build_cover(g, order, radius)
    assert validate_cover(g, cover) == []


def test_cover_valid_under_random_orders(small_graph):
    g = small_graph
    for seed in (0, 1):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        cover = build_cover(g, order, 1)
        assert validate_cover(g, cover) == []


def test_cluster_definition_matches_wreach(small_graph):
    """X_v = {w : v in WReach_2r[w]} exactly."""
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 1
    cover = build_cover(g, order, radius)
    wr = wreach_sets(g, order, 2 * radius)
    expected: dict[int, set[int]] = {}
    for w in range(g.n):
        for v in wr[w]:
            expected.setdefault(v, set()).add(w)
    assert {v: set(ms) for v, ms in cover.clusters.items()} == expected


def test_cover_degree_equals_wcol(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    assert cover.degree == wcol_of_order(g, order, 2 * radius)


def test_lemma6_ball_inside_home_cluster(small_graph):
    """Lemma 6: N_r[w] ⊆ X_{min WReach_r[w]}."""
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    for w in range(g.n):
        home = int(cover.home_cluster[w])
        members = set(cover.clusters[home])
        for x in ball(g, w, radius):
            assert int(x) in members


def test_cluster_radius_at_most_2r(medium_graph):
    g = medium_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    for v, members in cover.clusters.items():
        if len(members) > 1:
            assert induced_radius(g, members) <= 2 * radius


def test_cover_stats_consistency(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 1
    cover = build_cover(g, order, radius)
    st = cover_stats(g, cover)
    assert st.covers_all_balls
    assert st.degree == cover.degree
    assert st.max_cluster_radius <= 2 * radius
    assert st.num_clusters == cover.num_clusters
    assert st.within_bounds(wcol_of_order(g, order, 2 * radius))


def test_cover_radius_zero():
    g = gen.path_graph(4)
    order = LinearOrder.identity(4)
    cover = build_cover(g, order, 0)
    # With r = 0 every cluster is a singleton {v} and home is v itself.
    assert all(cover.home_cluster[v] == v for v in range(4))
    assert all(ms == (v,) for v, ms in cover.clusters.items())


def test_cover_order_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        build_cover(g, LinearOrder.identity(4), 1)


def test_centers_belong_to_their_clusters(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    cover = build_cover(g, order, 1)
    for v, members in cover.clusters.items():
        assert v in members
