"""Theorem 4: sparse r-neighborhood covers."""

import numpy as np
import pytest

from repro.analysis.validate import validate_cover
from repro.core.covers import build_cover, cover_stats
from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.traversal import ball, induced_radius
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


@pytest.mark.parametrize("radius", [1, 2])
def test_cover_is_valid(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    cover = build_cover(g, order, radius)
    assert validate_cover(g, cover) == []


def test_cover_valid_under_random_orders(small_graph):
    g = small_graph
    for seed in (0, 1):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        cover = build_cover(g, order, 1)
        assert validate_cover(g, cover) == []


def test_cluster_definition_matches_wreach(small_graph):
    """X_v = {w : v in WReach_2r[w]} exactly."""
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 1
    cover = build_cover(g, order, radius)
    wr = wreach_sets(g, order, 2 * radius)
    expected: dict[int, set[int]] = {}
    for w in range(g.n):
        for v in wr[w]:
            expected.setdefault(v, set()).add(w)
    assert {v: set(ms) for v, ms in cover.clusters.items()} == expected


def test_cover_degree_equals_wcol(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    assert cover.degree == wcol_of_order(g, order, 2 * radius)


def test_lemma6_ball_inside_home_cluster(small_graph):
    """Lemma 6: N_r[w] ⊆ X_{min WReach_r[w]}."""
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    for w in range(g.n):
        home = int(cover.home_cluster[w])
        members = set(cover.clusters[home])
        for x in ball(g, w, radius):
            assert int(x) in members


def test_cluster_radius_at_most_2r(medium_graph):
    g = medium_graph
    order, _ = degeneracy_order(g)
    radius = 2
    cover = build_cover(g, order, radius)
    for v, members in cover.clusters.items():
        if len(members) > 1:
            assert induced_radius(g, members) <= 2 * radius


def test_cover_stats_consistency(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 1
    cover = build_cover(g, order, radius)
    st = cover_stats(g, cover)
    assert st.covers_all_balls
    assert st.degree == cover.degree
    assert st.max_cluster_radius <= 2 * radius
    assert st.num_clusters == cover.num_clusters
    assert st.within_bounds(wcol_of_order(g, order, 2 * radius))


def test_cover_radius_zero():
    g = gen.path_graph(4)
    order = LinearOrder.identity(4)
    cover = build_cover(g, order, 0)
    # With r = 0 every cluster is a singleton {v} and home is v itself.
    assert all(cover.home_cluster[v] == v for v in range(4))
    assert all(ms == (v,) for v, ms in cover.clusters.items())


def test_cover_order_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        build_cover(g, LinearOrder.identity(4), 1)


def test_centers_belong_to_their_clusters(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    cover = build_cover(g, order, 1)
    for v, members in cover.clusters.items():
        assert v in members


# ----------------------------------------------------------------------
# Vectorized CSR construction vs the retained list-based reference
# ----------------------------------------------------------------------

def _assert_same_cover(a, b):
    assert a.radius_param == b.radius_param
    assert a.clusters == b.clusters
    assert np.array_equal(a.home_cluster, b.home_cluster)
    assert np.array_equal(a.degree_per_vertex, b.degree_per_vertex)


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_vectorized_equals_list_reference(small_graph, radius):
    from repro.core.covers import build_cover_lists

    g = small_graph
    orders = [degeneracy_order(g)[0]]
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        orders.append(LinearOrder.from_sequence(rng.permutation(g.n)))
    for order in orders:
        _assert_same_cover(
            build_cover(g, order, radius), build_cover_lists(g, order, radius)
        )


def test_vectorized_accepts_precomputed_csr():
    from repro.orders.wreach import RankedAdjacency, wreach_csr

    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    adj = RankedAdjacency(g, order)
    radius = 2
    cover = build_cover(
        g,
        order,
        radius,
        csr2=wreach_csr(g, order, 2 * radius, adj=adj),
        csr1=wreach_csr(g, order, radius, adj=adj),
    )
    _assert_same_cover(cover, build_cover(g, order, radius))
    _assert_same_cover(cover, build_cover(g, order, radius, adj=adj))


def test_empty_graph_cover():
    from repro.core.covers import build_cover_lists
    from repro.graphs.build import from_edges

    g = from_edges(0, [])
    order = LinearOrder.identity(0)
    for builder in (build_cover, build_cover_lists):
        cover = builder(g, order, 1)
        assert cover.clusters == {}
        assert cover.num_clusters == 0
        assert cover.degree == 0
        assert len(cover.home_cluster) == 0


def test_single_vertex_cover():
    from repro.graphs.build import from_edges

    g = from_edges(1, [])
    order = LinearOrder.identity(1)
    cover = build_cover(g, order, 1)
    assert cover.clusters == {0: (0,)}
    assert cover.home_cluster.tolist() == [0]
    assert cover.degree_per_vertex.tolist() == [1]


@pytest.mark.parametrize("radius", [1, 2])
def test_disconnected_graph_cover_matches_reference(radius):
    from repro.core.covers import build_cover_lists
    from repro.graphs.build import from_edges

    g = from_edges(9, [(0, 1), (1, 2), (4, 5), (7, 8)])  # + isolated 3, 6
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        cover = build_cover(g, order, radius)
        _assert_same_cover(cover, build_cover_lists(g, order, radius))
        assert validate_cover(g, cover) == []


def test_cluster_keys_and_members_are_plain_ints():
    g = gen.path_graph(6)
    order = LinearOrder.identity(6)
    cover = build_cover(g, order, 1)
    for v, members in cover.clusters.items():
        assert type(v) is int
        assert all(type(w) is int for w in members)


def test_cover_batch_kernel_path():
    """A graph above the scalar-fallback threshold runs the CSR sweep."""
    from repro.core.covers import build_cover_lists
    from repro.orders.wreach import _SMALL_N
    from repro.graphs.random_models import random_tree

    g = random_tree(_SMALL_N + 150, seed=2)
    order, _ = degeneracy_order(g)
    _assert_same_cover(build_cover(g, order, 1), build_cover_lists(g, order, 1))


def test_mismatched_precomputed_csr_rejected():
    from repro.orders.wreach import wreach_csr

    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    radius = 1
    with pytest.raises(OrderError):
        # WReach_r supplied where WReach_2r is expected.
        build_cover(
            g,
            order,
            radius,
            csr2=wreach_csr(g, order, radius),
            csr1=wreach_csr(g, order, radius),
        )
