"""The measured engine cost model behind ``engine="auto"`` resolution.

Covers the model object itself (prediction, engine picking with the
partial-calibration fallback, wave-width gating, persistence round-trip
and schema rejection), the nonnegative fit, a tiny end-to-end
``calibrate(quick=True)`` run with a fake clock, and the wiring into
``SolveRequest.resolve_engine``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.engine_model import (
    DEFAULT_MODEL_PATH,
    MODEL_SCHEMA,
    EngineCostModel,
    _features,
    _fit_nonneg,
    calibrate,
    default_model,
)


def _model(batch=1.0, pernode=2.0, **kw) -> EngineCostModel:
    zeros = (0.0, 0.0)
    return EngineCostModel(
        coef={"batch": zeros + (batch,), "pernode": zeros + (pernode,)}, **kw
    )


def test_predict_scales_with_size_and_radius() -> None:
    m = _model()
    assert m.predict("batch", 100, 300, 1) < m.predict("batch", 1000, 3000, 1)
    assert m.predict("batch", 100, 300, 1) < m.predict("batch", 100, 300, 4)
    assert m.predict("warp", 100, 300, 1) is None


def test_pick_engine_prefers_cheaper_and_respects_declaration_order() -> None:
    m = _model(batch=1.0, pernode=2.0)
    assert m.pick_engine(500, 1500, 2, ("pernode", "batch")) == "batch"
    m = _model(batch=3.0, pernode=2.0)
    assert m.pick_engine(500, 1500, 2, ("pernode", "batch")) == "pernode"
    # Exact tie keeps declaration order.
    m = _model(batch=2.0, pernode=2.0)
    assert m.pick_engine(500, 1500, 2, ("pernode", "batch")) == "pernode"


def test_pick_engine_falls_back_when_partially_calibrated() -> None:
    m = EngineCostModel(coef={"batch": (0.0, 0.0, 1.0)})
    # "pernode" was never measured: the declared preference wins even
    # though "batch" has a (cheap) prediction.
    assert m.pick_engine(500, 1500, 2, ("pernode", "batch")) == "pernode"


def test_pick_wave_width_gates_on_instance_size() -> None:
    m = _model(waves={"*": (16, 1000)})
    assert m.pick_wave_width(999, 3000, 2) == 0
    assert m.pick_wave_width(1000, 3000, 2) == 16
    lockstep = _model(waves={})
    assert lockstep.pick_wave_width(10**6, 3 * 10**6, 2) == 0


def test_pick_wave_width_is_per_protocol_with_wildcard_fallback() -> None:
    m = _model(waves={"election": (64, 500), "join": (0, 0), "*": (16, 1000)})
    # Each protocol gets its own verdict...
    assert m.pick_wave_width(2000, 6000, 2, protocol="election") == 64
    assert m.pick_wave_width(2000, 6000, 2, protocol="join") == 0
    # ...and unknown/omitted protocols fall back to the wildcard.
    assert m.pick_wave_width(2000, 6000, 2, protocol="cluster") == 16
    assert m.pick_wave_width(2000, 6000, 2) == 16
    # Per-protocol min_n gates independently of the wildcard's.
    assert m.pick_wave_width(600, 1800, 2, protocol="election") == 64
    assert m.pick_wave_width(600, 1800, 2, protocol="cluster") == 0


def test_round_trip_and_schema_rejection(tmp_path) -> None:
    m = _model(waves={"election": (64, 4000)}, meta={"radius": 2})
    path = tmp_path / "model.json"
    m.save(path)
    back = EngineCostModel.load(path)
    assert back is not None
    assert back.coef == m.coef
    assert back.waves == {"election": (64, 4000)}
    assert back.meta == {"radius": 2}

    doc = json.loads(path.read_text())
    doc["schema"] = MODEL_SCHEMA + 1
    path.write_text(json.dumps(doc))
    assert EngineCostModel.load(path) is None  # never raises on stale schema
    with pytest.raises(ValueError):
        EngineCostModel.from_dict(doc)
    assert EngineCostModel.load(tmp_path / "absent.json") is None


def test_schema_1_loads_as_wildcard_verdict(tmp_path) -> None:
    # A committed schema-1 artifact (global verdict) must keep loading:
    # its single threshold becomes the "*" wildcard entry.
    legacy = {
        "schema": 1,
        "coef": {"batch": [0.0, 0.0, 1e-6]},
        "wave_width": 16,
        "wave_min_n": 9000,
        "meta": {},
    }
    m = EngineCostModel.from_dict(legacy)
    assert m.waves == {"*": (16, 9000)}
    assert m.pick_wave_width(9000, 27000, 2, protocol="join") == 16
    # Lockstep legacy documents produce no verdict at all.
    legacy["wave_width"] = 0
    assert EngineCostModel.from_dict(legacy).waves == {}


def test_fit_nonneg_clips_and_refits() -> None:
    rng = np.random.default_rng(0)
    X = np.stack([_features(n, 3 * n, 2) for n in (100, 300, 900, 2700)])
    y = X @ np.array([0.01, 0.002, 1e-6]) + rng.normal(0, 1e-5, size=4)
    coef = np.asarray(_fit_nonneg(X, y))
    assert (coef >= 0).all()
    assert np.allclose(X @ coef, y, rtol=0.05)
    # A target anti-correlated with one feature clips it to exactly 0.
    y_neg = -X[:, 2] + 10.0
    coef = np.asarray(_fit_nonneg(X, np.maximum(y_neg, 0)))
    assert (coef >= 0).all()


def test_calibrate_quick_produces_usable_model() -> None:
    ticks = iter(range(10_000))

    def fake_clock() -> float:
        return float(next(ticks))

    m = calibrate(quick=True, radius=1, clock=fake_clock)
    assert set(m.coef) == {"batch", "pernode"}
    for c in m.coef.values():
        assert len(c) == 3 and all(x >= 0 for x in c)
    assert m.pick_engine(500, 1500, 1, ("batch", "pernode")) in (
        "batch",
        "pernode",
    )
    assert m.meta["quick"] is True
    assert {"n", "m", "batch", "pernode"} <= set(
        m.meta["timings"]["delaunay200"]
    )


def test_committed_artifact_loads_and_is_current_schema() -> None:
    assert DEFAULT_MODEL_PATH.exists(), "calibration artifact must be committed"
    doc = json.loads(DEFAULT_MODEL_PATH.read_text())
    assert doc["schema"] == MODEL_SCHEMA
    m = default_model()
    assert m is not None
    assert set(m.coef) >= {"batch", "pernode"}
    # The artifact must cover both simulator engines; otherwise "auto"
    # silently degenerates to the declared preference everywhere.
    assert m.pick_engine(2000, 6000, 2, ("batch", "pernode")) in (
        "batch",
        "pernode",
    )


def test_resolve_engine_consults_the_model() -> None:
    from repro.api.types import SolverCapabilities, SolveRequest
    from repro.graphs.generators import grid_2d

    g = grid_2d(8, 8)
    caps = SolverCapabilities(engines=("batch", "pernode"))
    req = SolveRequest(graph=g, radius=2)

    prefers_pernode = _model(batch=5.0, pernode=1.0)
    assert req.resolve_engine(caps, cost_model=prefers_pernode) == "pernode"
    prefers_batch = _model(batch=1.0, pernode=5.0)
    assert req.resolve_engine(caps, cost_model=prefers_batch) == "batch"

    # Explicit engine requests bypass the model entirely.
    explicit = SolveRequest(graph=g, radius=2, engine="pernode")
    assert explicit.resolve_engine(caps, cost_model=prefers_batch) == "pernode"

    # Single-engine solvers never consult the model.
    solo = SolverCapabilities(engines=("pernode",))
    assert req.resolve_engine(solo, cost_model=prefers_batch) == "pernode"
