"""Shared fixtures: the small graph zoo every suite reuses.

Also registers the ``large`` marker: 10^6-vertex end-to-end tests that
run in their own (non-blocking) CI job.  They are skipped unless
``--run-large`` is passed, so the tier-1 invocation stays fast.
"""

from __future__ import annotations

import pytest

from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.graphs.graph import Graph


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--run-large",
        action="store_true",
        default=False,
        help="run tests marked 'large' (10^6-vertex end-to-end instances)",
    )


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "large: 10^6-vertex end-to-end tests; skipped without --run-large",
    )
    config.addinivalue_line(
        "markers",
        "faults: fault-injection tests (worker kills, torn writes, lease "
        "contention); also run as their own CI job",
    )
    config.addinivalue_line(
        "markers",
        "serve: solve-daemon end-to-end tests (HTTP round trips, digest "
        "sharding, drain); also run as their own CI job",
    )


def pytest_collection_modifyitems(config, items) -> None:
    if config.getoption("--run-large"):
        return
    skip_large = pytest.mark.skip(reason="large instance; pass --run-large")
    for item in items:
        if "large" in item.keywords:
            item.add_marker(skip_large)


def small_connected_zoo() -> list[tuple[str, Graph]]:
    """Connected graphs small enough for exact cross-checks."""
    return [
        ("path10", gen.path_graph(10)),
        ("cycle9", gen.cycle_graph(9)),
        ("star8", gen.star_graph(8)),
        ("grid4x5", gen.grid_2d(4, 5)),
        ("tri4x4", gen.triangular_grid(4, 4)),
        ("hex4x6", gen.hex_grid(4, 6)),
        ("tree_b2h3", gen.balanced_tree(2, 3)),
        ("caterpillar", gen.caterpillar(5, 2)),
        ("ktree2", gen.k_tree(14, 2, seed=1)),
        ("outerplanar12", gen.maximal_outerplanar(12, seed=2)),
        ("delaunay25", rm.delaunay_graph(25, seed=4)[0]),
        ("k4", gen.complete_graph(4)),
    ]


def medium_zoo() -> list[tuple[str, Graph]]:
    """Bigger instances for the distributed / cover invariants."""
    return [
        ("grid8x8", gen.grid_2d(8, 8)),
        ("torus6x6", gen.torus_2d(6, 6)),
        ("king6x6", gen.king_graph(6, 6)),
        ("tree_b3h3", gen.balanced_tree(3, 3)),
        ("delaunay120", rm.delaunay_graph(120, seed=7)[0]),
        ("ktree3", gen.k_tree(60, 3, seed=5)),
    ]


@pytest.fixture(params=small_connected_zoo(), ids=lambda p: p[0])
def small_graph(request) -> Graph:
    return request.param[1]


@pytest.fixture(params=medium_zoo(), ids=lambda p: p[0])
def medium_graph(request) -> Graph:
    return request.param[1]
