"""Dvořák-style and greedy baselines."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import brute_force_domset
from repro.core.greedy import domset_greedy
from repro.errors import GraphError, OrderError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order


@pytest.mark.parametrize("radius", [1, 2])
def test_dvorak_valid(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_dvorak(g, order, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_dvorak_dominator_within_radius(small_graph):
    from repro.graphs.traversal import bfs_distances

    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_dvorak(g, order, 2)
    for w in range(g.n):
        d = int(res.dominator_of[w])
        assert d in res.dominators
        assert bfs_distances(g, d, max_dist=2)[w] != -1


def test_dvorak_members_pairwise_far():
    """Dominators added by the greedy rule are pairwise > r apart."""
    from repro.graphs.traversal import bfs_distances

    g = gen.grid_2d(6, 6)
    order, _ = degeneracy_order(g)
    radius = 2
    res = domset_dvorak(g, order, radius)
    for v in res.dominators:
        dist = bfs_distances(g, v, max_dist=radius)
        for u in res.dominators:
            if u != v:
                assert dist[u] == -1  # farther than radius


def test_dvorak_c_squared_bound_small():
    for g in (gen.path_graph(12), gen.grid_2d(4, 4), gen.cycle_graph(9)):
        order, _ = degeneracy_order(g)
        for radius in (1, 2):
            res = domset_dvorak(g, order, radius)
            opt, _ = brute_force_domset(g, radius)
            c = wcol_of_order(g, order, 2 * radius)
            assert res.size <= c * c * opt


def test_dvorak_rejects_bad_input():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        domset_dvorak(g, LinearOrder.identity(4), 1)
    with pytest.raises(OrderError):
        domset_dvorak(g, LinearOrder.identity(3), -1)


def test_dvorak_radius_zero():
    g = gen.path_graph(4)
    res = domset_dvorak(g, LinearOrder.identity(4), 0)
    assert res.dominators == (0, 1, 2, 3)


@pytest.mark.parametrize("radius", [1, 2])
def test_greedy_valid(small_graph, radius):
    g = small_graph
    res = domset_greedy(g, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_greedy_optimal_on_star():
    g = gen.star_graph(10)
    res = domset_greedy(g, 1)
    assert res.dominators == (0,)


def test_greedy_near_optimal_small():
    """Greedy achieves <= H(n) * OPT; on these instances it's near-exact."""
    for g in (gen.grid_2d(3, 5), gen.cycle_graph(12), gen.balanced_tree(2, 3)):
        for radius in (1, 2):
            res = domset_greedy(g, radius)
            opt, _ = brute_force_domset(g, radius)
            assert res.size <= 2 * opt + 1


def test_greedy_dominator_of_within_radius(small_graph):
    from repro.graphs.traversal import bfs_distances

    g = small_graph
    res = domset_greedy(g, 2)
    for w in range(g.n):
        d = int(res.dominator_of[w])
        assert bfs_distances(g, d, max_dist=2)[w] != -1


def test_greedy_radius_zero():
    g = gen.path_graph(3)
    res = domset_greedy(g, 0)
    assert res.dominators == (0, 1, 2)


def test_greedy_empty_graph():
    g = from_edges(0, [])
    res = domset_greedy(g, 1)
    assert res.dominators == ()


def test_greedy_rejects_negative_radius():
    with pytest.raises(GraphError):
        domset_greedy(gen.path_graph(3), -1)


def test_greedy_deterministic(small_graph):
    g = small_graph
    assert domset_greedy(g, 1).dominators == domset_greedy(g, 1).dominators


def test_empirical_ordering_greedy_le_dvorak_le_ours_on_grids():
    """Documented empirical fact (T1): greedy <= dvorak <= elect-min sizes."""
    g = gen.grid_2d(8, 8)
    order, _ = degeneracy_order(g)
    for radius in (1, 2):
        ours = domset_sequential(g, order, radius).size
        dv = domset_dvorak(g, order, radius).size
        gr = domset_greedy(g, radius).size
        assert gr <= dv <= ours
