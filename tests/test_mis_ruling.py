"""Luby MIS and the ruling-set distance-r DS baseline."""

import numpy as np
import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.distributed.mis import run_luby_mis
from repro.distributed.ruling import power_graph, ruling_domset
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph
from repro.graphs.traversal import bfs_distances


def _check_mis(g, mis):
    s = set(mis)
    # Independent.
    for u, v in g.edges():
        assert not (u in s and v in s)
    # Maximal: every non-member has a member neighbor.
    for v in range(g.n):
        if v not in s:
            assert any(int(u) in s for u in g.neighbors(v))


def test_luby_on_zoo(small_graph):
    mis, res = run_luby_mis(small_graph, seed=3)
    _check_mis(small_graph, mis)


def test_luby_deterministic_by_seed():
    g = gen.grid_2d(6, 6)
    a, _ = run_luby_mis(g, seed=1)
    b, _ = run_luby_mis(g, seed=1)
    c, _ = run_luby_mis(g, seed=2)
    assert a == b
    # Different seeds usually differ (not guaranteed; this graph does).
    assert a != c


def test_luby_phases_logarithmic():
    g, _ = delaunay_graph(300, seed=5)
    mis, res = run_luby_mis(g, seed=0)
    _check_mis(g, mis)
    assert res.rounds <= 8 * int(np.ceil(np.log2(g.n)))


def test_luby_edgeless():
    g = from_edges(5, [])
    mis, _ = run_luby_mis(g)
    assert mis == [0, 1, 2, 3, 4]


def test_luby_complete_graph_single():
    g = gen.complete_graph(7)
    mis, _ = run_luby_mis(g, seed=4)
    assert len(mis) == 1


def test_luby_message_size_one_word_ish():
    g = gen.grid_2d(5, 5)
    _, res = run_luby_mis(g)
    assert res.max_payload_words <= 3  # ("prio", float) tuples


def test_power_graph_structure():
    g = gen.path_graph(6)
    g2 = power_graph(g, 2)
    assert g2.has_edge(0, 2) and not g2.has_edge(0, 3)
    g3 = power_graph(g, 5)
    assert g3.m == 6 * 5 // 2  # becomes complete
    assert power_graph(g, 1) is g


def test_power_graph_rejects_zero():
    with pytest.raises(GraphError):
        power_graph(gen.path_graph(3), 0)


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_ruling_is_dominating_and_independent(radius):
    for g in (gen.grid_2d(7, 7), delaunay_graph(80, seed=2)[0], gen.balanced_tree(2, 4)):
        res = ruling_domset(g, radius, seed=1)
        assert is_distance_r_dominating_set(g, res.dominators, radius)
        # Pairwise distance > radius.
        doms = list(res.dominators)
        for v in doms:
            dist = bfs_distances(g, v, max_dist=radius)
            for u in doms:
                if u != v:
                    assert dist[u] == -1


def test_ruling_round_accounting():
    g = gen.grid_2d(6, 6)
    res = ruling_domset(g, 2, seed=0)
    assert res.g_rounds == 2 * 2 * res.power_phases
    assert res.power_phases >= 1


def test_ruling_independence_implies_small_on_paths():
    # On a path, a maximal r-independent set has <= ceil(n/(r+1)) members.
    g = gen.path_graph(30)
    res = ruling_domset(g, 2, seed=0)
    assert res.size <= -(-30 // 3)


def test_ruling_rejects_radius_zero():
    with pytest.raises(GraphError):
        ruling_domset(gen.path_graph(3), 0)
