"""Runtime determinism regression: repeated runs are bit-identical.

The static side of this invariant is ``repro.lint``'s D-rules; this is
the dynamic side.  Running the Theorem-9 pipeline twice on the same
graph — on either engine — must reproduce the same dominating set, the
same per-phase round counts, and the same word-level traffic accounting,
and the two engines must agree with each other.  Any dict/set iteration
order or object-identity leak into an emission shows up here as a
flaky diff.
"""

from __future__ import annotations

import pytest

from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.unified_bc import run_unified_bc
from repro.graphs.generators import grid_2d, k_tree

GRAPHS = {
    "grid_5x5": lambda: grid_2d(5, 5),
    "k_tree_30_2": lambda: k_tree(30, 2, seed=7),
}

ENGINES = ("batch", "pernode")


def _domset_fingerprint(res):
    return {
        "dominators": res.dominators,
        "dominator_of": tuple(res.dominator_of.tolist()),
        "phase_rounds": res.phase_rounds,
        "phase_max_words": res.phase_max_words,
        "total_words": res.total_words,
    }


def _unified_fingerprint(res):
    return {
        "dominators": res.dominators,
        "connected_set": res.connected_set,
        "dominator_of": tuple(res.dominator_of.tolist()),
        "levels": tuple(res.levels.tolist()),
        "rounds": res.rounds,
        "max_payload_words": res.max_payload_words,
        "total_words": res.total_words,
    }


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("engine", ENGINES)
def test_domset_bc_is_run_to_run_deterministic(graph_name, engine) -> None:
    make = GRAPHS[graph_name]
    first = _domset_fingerprint(run_domset_bc(make(), radius=2, engine=engine))
    second = _domset_fingerprint(run_domset_bc(make(), radius=2, engine=engine))
    assert first == second


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_domset_bc_engines_agree_bit_for_bit(graph_name) -> None:
    make = GRAPHS[graph_name]
    batch = _domset_fingerprint(run_domset_bc(make(), radius=2, engine="batch"))
    pernode = _domset_fingerprint(
        run_domset_bc(make(), radius=2, engine="pernode")
    )
    assert batch == pernode


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("engine", ENGINES)
def test_unified_bc_is_run_to_run_deterministic(graph_name, engine) -> None:
    make = GRAPHS[graph_name]
    first = _unified_fingerprint(
        run_unified_bc(make(), radius=2, connect=True, engine=engine)
    )
    second = _unified_fingerprint(
        run_unified_bc(make(), radius=2, connect=True, engine=engine)
    )
    assert first == second


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("connect", (False, True))
def test_unified_bc_engines_agree_bit_for_bit(graph_name, connect) -> None:
    make = GRAPHS[graph_name]
    batch = _unified_fingerprint(
        run_unified_bc(make(), radius=2, connect=connect, engine="batch")
    )
    pernode = _unified_fingerprint(
        run_unified_bc(make(), radius=2, connect=connect, engine="pernode")
    )
    assert batch == pernode
