"""SupervisedExecutor: respawn, backoff, poison, deadline, cancel.

Unit-level: fake pool factories simulate worker death deterministically
(no real processes are killed here — that is ``test_faults.py``'s job).
"""

import threading
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api.supervisor import SupervisedExecutor, settle_outcome
from repro.errors import RequestFailed, SolverError


def _group_fn(payload, attempt=0):
    """Stand-in group entry point: one ok outcome per item."""
    return [("ok", (item, attempt)) for item in payload]


class _GoodPool:
    """Runs submissions synchronously and succeeds."""

    def __init__(self):
        self.submitted = []

    def submit(self, fn, *args):
        self.submitted.append(args)
        cf = Future()
        try:
            cf.set_result(fn(*args))
        except BaseException as exc:
            cf.set_exception(exc)
        return cf

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _DyingPool(_GoodPool):
    """Breaks like a pool whose worker died (every submission)."""

    def submit(self, fn, *args):
        self.submitted.append(args)
        cf = Future()
        cf.set_exception(BrokenProcessPool("a child process terminated abruptly"))
        return cf


class _FlakyFactory:
    """Produces pools that die for the first ``failures`` submissions."""

    def __init__(self, failures):
        self.failures = failures
        self.spawned = []

    def __call__(self):
        pool = _DyingPool() if len(self.spawned) < self.failures else _GoodPool()
        self.spawned.append(pool)
        return pool


def _result(fut, timeout=10.0):
    tag, payload = fut.result(timeout)
    if tag == "err":
        raise payload
    return payload


def test_success_settles_per_request_futures_in_order():
    ex = SupervisedExecutor(2, pool_factory=_GoodPool)
    futs = ex.submit_group(
        _group_fn, (["a", "b", "c"],), digest="d1", algorithms=["x", "y", "z"]
    )
    assert [_result(f) for f in futs] == [("a", 0), ("b", 0), ("c", 0)]
    assert ex.stats() == {
        "retries": {}, "respawns": 0, "poisoned": [], "groups": 1
    }
    ex.shutdown()


def test_breakage_respawns_and_redispatches_with_attempt_counter():
    factory = _FlakyFactory(failures=1)
    ex = SupervisedExecutor(
        2, pool_factory=factory, backoff_base_s=0.001, max_attempts=3
    )
    futs = ex.submit_group(
        _group_fn, (["a"],), digest="d1", algorithms=["alg"]
    )
    # Recovered on the respawned pool; the retry carried attempt=1.
    assert _result(futs[0]) == ("a", 1)
    assert ex.stats()["respawns"] == 1
    assert ex.stats()["retries"] == {"d1": 1}
    assert len(factory.spawned) == 2
    ex.shutdown()


def test_exhaustion_poisons_only_with_structured_context():
    ex = SupervisedExecutor(
        2, pool_factory=_DyingPool, backoff_base_s=0.001, max_attempts=3
    )
    futs = ex.submit_group(
        _group_fn, (["a", "b"],), digest="deadbeef", algorithms=["seq.x", "seq.y"]
    )
    for fut, algorithm in zip(futs, ("seq.x", "seq.y"), strict=True):
        with pytest.raises(RequestFailed) as ei:
            _result(fut)
        err = ei.value
        assert isinstance(err, SolverError)  # satellite: SolverError subtype
        assert err.reason == "worker-crash"
        assert err.algorithm == algorithm
        assert err.graph_digest == "deadbeef"
        assert err.attempts == 3
        assert isinstance(err.__cause__, BrokenProcessPool)
    assert ex.stats()["poisoned"] == ["deadbeef"]
    assert ex.stats()["retries"] == {"deadbeef": 2}
    ex.shutdown()


def test_sibling_group_unaffected_by_poisoned_group():
    calls = []

    class _SelectivePool(_GoodPool):
        """Kills any group whose digest argument is 'bad'."""

        def submit(self, fn, *args):
            calls.append(args[1])
            if args[1] == "bad":
                cf = Future()
                cf.set_exception(BrokenProcessPool("boom"))
                return cf
            return super().submit(fn, *args)

    def fn(payload, digest, attempt=0):
        return [("ok", item) for item in payload]

    ex = SupervisedExecutor(
        2, pool_factory=_SelectivePool, backoff_base_s=0.001, max_attempts=2
    )
    good = ex.submit_group(fn, (["g"], "good"), digest="good", algorithms=["a"])
    bad = ex.submit_group(fn, (["b"], "bad"), digest="bad", algorithms=["a"])
    assert _result(good[0]) == "g"
    with pytest.raises(RequestFailed):
        _result(bad[0])
    # Only the dying digest was ever retried.
    assert ex.stats()["retries"] == {"bad": 1}
    assert ex.stats()["poisoned"] == ["bad"]
    ex.shutdown()


def test_group_level_error_is_wrapped_not_retried():
    class _RaisingPool(_GoodPool):
        def submit(self, fn, *args):
            cf = Future()
            cf.set_exception(ValueError("graph missing"))
            return cf

    ex = SupervisedExecutor(2, pool_factory=_RaisingPool, max_attempts=3)
    futs = ex.submit_group(_group_fn, (["a"],), digest="d", algorithms=["alg"])
    with pytest.raises(RequestFailed) as ei:
        _result(futs[0])
    assert ei.value.reason == "error"
    assert ei.value.attempts == 1  # non-breakage errors do not retry
    assert isinstance(ei.value.__cause__, ValueError)
    assert ex.stats()["respawns"] == 0
    ex.shutdown()


def test_deadline_settles_one_request_while_siblings_complete():
    release = threading.Event()

    class _SlowPool(_GoodPool):
        """Completes its group only after the test releases it."""

        def submit(self, fn, *args):
            cf = Future()

            def run():
                release.wait(10.0)
                cf.set_result(fn(*args))

            threading.Thread(target=run, daemon=True).start()
            return cf

    ex = SupervisedExecutor(2, pool_factory=_SlowPool)
    futs = ex.submit_group(
        _group_fn, (["a", "b"],), digest="d", algorithms=["fast", "slow"],
        deadlines_s=[None, 0.01],
    )
    with pytest.raises(RequestFailed) as ei:
        _result(futs[1], timeout=5.0)
    assert ei.value.reason == "deadline"
    assert ei.value.algorithm == "slow"
    release.set()
    assert _result(futs[0]) == ("a", 0)  # sibling unaffected
    ex.shutdown()


def test_shutdown_cancel_pending_settles_unfinished_futures():
    class _NeverPool(_GoodPool):
        def submit(self, fn, *args):
            return Future()  # never completes

    ex = SupervisedExecutor(2, pool_factory=_NeverPool)
    futs = ex.submit_group(_group_fn, (["a"],), digest="d", algorithms=["alg"])
    ex.shutdown(wait=True, cancel_pending=True)
    with pytest.raises(RequestFailed) as ei:
        _result(futs[0], timeout=1.0)
    assert ei.value.reason == "cancelled"
    with pytest.raises(RuntimeError):
        ex.submit_group(_group_fn, (["b"],), digest="d", algorithms=["alg"])


def test_settle_outcome_first_writer_wins():
    fut = Future()
    assert settle_outcome(fut, ("ok", 1)) is True
    assert settle_outcome(fut, ("ok", 2)) is False
    assert fut.result() == ("ok", 1)


def test_backoff_delays_are_capped_and_seeded():
    ex = SupervisedExecutor(
        2, pool_factory=_GoodPool, backoff_base_s=0.5, backoff_cap_s=1.0, seed=3
    )
    # Reconstruct the delay formula for attempts 1..4: min(cap, base*2^k).
    raw = [min(1.0, 0.5 * (2 ** (k - 1))) for k in range(1, 5)]
    assert raw == [0.5, 1.0, 1.0, 1.0]
    # Jitter draws are deterministic under the seed.
    import random

    a = [random.Random(3).uniform(0.0, 0.5) for _ in range(1)]
    b = [random.Random(3).uniform(0.0, 0.5) for _ in range(1)]
    assert a == b
    ex.shutdown()


def test_pool_spawned_lazily_and_reused_across_groups():
    spawned = []

    def factory():
        pool = _GoodPool()
        spawned.append(pool)
        return pool

    ex = SupervisedExecutor(2, pool_factory=factory)
    assert spawned == []
    ex.submit_group(_group_fn, (["a"],), digest="d1", algorithms=["x"])
    ex.submit_group(_group_fn, (["b"],), digest="d2", algorithms=["x"])
    assert len(spawned) == 1
    ex.shutdown()


def test_retry_delivers_same_payload_deterministically():
    """Recovered results are computed from the same arguments — the
    idempotence contract the whole retry design leans on."""
    factory = _FlakyFactory(failures=2)
    ex = SupervisedExecutor(
        2, pool_factory=factory, backoff_base_s=0.001, max_attempts=3
    )
    futs = ex.submit_group(
        _group_fn, (["p", "q"],), digest="d", algorithms=["x", "y"]
    )
    assert [_result(f)[0] for f in futs] == ["p", "q"]
    assert ex.stats()["retries"] == {"d": 2}
    assert ex.stats()["respawns"] == 2
    ex.shutdown()


def test_deferred_timer_skipped_when_future_already_done():
    ex = SupervisedExecutor(2, pool_factory=_GoodPool)
    futs = ex.submit_group(
        _group_fn, (["a"],), digest="d", algorithms=["x"], deadlines_s=[5.0]
    )
    assert _result(futs[0]) == ("a", 0)
    time.sleep(0.02)  # the armed timer must have been cancelled
    assert _result(futs[0]) == ("a", 0)
    ex.shutdown()
