"""LinearOrder semantics."""

import numpy as np
import pytest

from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.orders.linear_order import LinearOrder


def test_identity():
    o = LinearOrder.identity(5)
    assert o.rank.tolist() == [0, 1, 2, 3, 4]
    assert o.by_rank.tolist() == [0, 1, 2, 3, 4]
    assert o.less(0, 1)


def test_from_sequence():
    o = LinearOrder.from_sequence([2, 0, 1])
    assert o.by_rank.tolist() == [2, 0, 1]
    assert o.rank.tolist() == [1, 2, 0]
    assert o.less(2, 0) and o.less(0, 1)


def test_rejects_non_permutation():
    with pytest.raises(OrderError):
        LinearOrder(np.array([0, 0, 1]))
    with pytest.raises(OrderError):
        LinearOrder(np.array([0, 2]))


def test_from_keys_with_tiebreak():
    # Keys (class ids): vertex 2 has the smallest class; 0 and 1 tie and
    # break by id.
    o = LinearOrder.from_keys([5, 5, 1])
    assert o.by_rank.tolist() == [2, 0, 1]


def test_from_keys_tuples():
    keys = [(1, 9), (0, 9), (1, 0)]
    o = LinearOrder.from_keys(keys)
    assert o.by_rank.tolist() == [1, 2, 0]


def test_min_of():
    o = LinearOrder.from_sequence([3, 1, 0, 2])
    assert o.min_of([0, 1, 2]) == 1
    assert o.min_of([2]) == 2
    with pytest.raises(OrderError):
        o.min_of([])


def test_sorted_adjacency_matches_order(small_graph):
    g = small_graph
    rng = np.random.default_rng(0)
    o = LinearOrder.from_sequence(rng.permutation(g.n))
    adj = o.sorted_adjacency(g)
    for v in range(g.n):
        row = adj[v]
        assert sorted(row.tolist()) == sorted(g.neighbors(v).tolist())
        ranks = [o.rank[u] for u in row]
        assert ranks == sorted(ranks)


def test_sorted_adjacency_size_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        LinearOrder.identity(4).sorted_adjacency(g)


def test_restrict():
    o = LinearOrder.from_sequence([3, 1, 0, 2])
    # Restrict to [0, 2, 3]: order among them is 3 < 0 < 2.
    r = o.restrict([0, 2, 3])
    # vertices renamed by position in the input list: 0->0, 2->1, 3->2
    assert r.by_rank.tolist() == [2, 0, 1]


def test_equality_and_hash():
    a = LinearOrder.from_sequence([1, 0, 2])
    b = LinearOrder.from_sequence([1, 0, 2])
    c = LinearOrder.identity(3)
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert a != "x"


def test_immutability():
    o = LinearOrder.identity(3)
    with pytest.raises(ValueError):
        o.rank[0] = 2
