"""Theorem 5: the sequential distance-r dominating set algorithm."""

import numpy as np
import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.core.exact import brute_force_domset
from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_algorithm1_equals_definition(small_graph, radius):
    """Algorithm 1 output == {min WReach_r[w] : w} (the paper's equality (2))."""
    g = small_graph
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        a = domset_sequential(g, order, radius)
        b = domset_by_wreach(g, order, radius)
        assert a.dominators == b.dominators
        assert np.array_equal(a.dominator_of, b.dominator_of)


@pytest.mark.parametrize("radius", [1, 2])
def test_output_is_dominating(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_dominator_of_is_min_wreach(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    res = domset_sequential(g, order, radius)
    wr = wreach_sets(g, order, radius)
    for w in range(g.n):
        assert res.dominator_of[w] == order.min_of(wr[w])


def test_dominator_within_distance(small_graph):
    from repro.graphs.traversal import bfs_distances

    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    res = domset_sequential(g, order, radius)
    for w in range(g.n):
        d = bfs_distances(g, int(res.dominator_of[w]), max_dist=radius)
        assert d[w] != -1


def test_radius_zero_selects_everything():
    g = gen.grid_2d(3, 3)
    order = LinearOrder.identity(9)
    res = domset_sequential(g, order, 0)
    assert res.dominators == tuple(range(9))
    assert all(res.dominator_of[v] == v for v in range(9))


def test_negative_radius_rejected():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        domset_sequential(g, LinearOrder.identity(3), -1)


def test_order_size_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        domset_sequential(g, LinearOrder.identity(4), 1)


def test_theorem5_bound_holds_on_small_instances():
    """|D| <= c(r) * OPT with c(r) = max |WReach_2r| (measured)."""
    graphs = [
        gen.path_graph(12),
        gen.cycle_graph(10),
        gen.grid_2d(3, 5),
        gen.star_graph(10),
        gen.balanced_tree(2, 3),
    ]
    for g in graphs:
        for radius in (1, 2):
            order, _ = degeneracy_order(g)
            res = domset_sequential(g, order, radius)
            opt, _ = brute_force_domset(g, radius)
            c = wcol_of_order(g, order, 2 * radius)
            assert res.size <= c * opt, (g, radius, res.size, c, opt)


def test_theorem5_bound_random_orders():
    """The guarantee is order-independent (with the order's own c)."""
    g = gen.grid_2d(4, 4)
    opt, _ = brute_force_domset(g, 1)
    for seed in range(5):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        res = domset_sequential(g, order, 1)
        c = wcol_of_order(g, order, 2)
        assert res.size <= c * opt


def test_path_identity_order_structure():
    # Path with identity order: min WReach_1[w] = w-1 (or 0 for w=0),
    # so D = {0, 1, ..., n-2}.
    g = gen.path_graph(5)
    res = domset_sequential(g, LinearOrder.identity(5), 1)
    assert res.dominators == (0, 1, 2, 3)


def test_star_center_last_gives_singleton():
    # Star: order the center L-least -> every leaf elects the center.
    g = gen.star_graph(8)
    order = LinearOrder.from_sequence([0, 1, 2, 3, 4, 5, 6, 7])
    res = domset_sequential(g, order, 1)
    assert res.dominators == (0,)


def test_star_center_first_still_dominates():
    # Center L-greatest: leaves elect themselves (no smaller weak reach).
    g = gen.star_graph(5)
    order = LinearOrder.from_sequence([1, 2, 3, 4, 0])
    res = domset_sequential(g, order, 1)
    assert is_distance_r_dominating_set(g, res.dominators, 1)
    assert 1 in res.dominators


def test_disconnected_graph_all_components_covered():
    g = from_edges(6, [(0, 1), (2, 3), (4, 5)])
    order = LinearOrder.identity(6)
    res = domset_sequential(g, order, 1)
    assert is_distance_r_dominating_set(g, res.dominators, 1)
    assert {0, 2, 4} <= set(res.dominators)


def test_result_membership_helper():
    g = gen.path_graph(4)
    res = domset_sequential(g, LinearOrder.identity(4), 1)
    mem = res.membership(4)
    assert mem.dtype == bool
    assert set(np.flatnonzero(mem).tolist()) == set(res.dominators)


def test_large_radius_single_dominator():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, 10)
    # Radius exceeds the diameter: the L-least vertex dominates everyone.
    least = int(order.by_rank[0])
    assert res.dominators == (least,)
