"""Theorem 5: the sequential distance-r dominating set algorithm."""

import numpy as np
import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.core.exact import brute_force_domset
from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_algorithm1_equals_definition(small_graph, radius):
    """Algorithm 1 output == {min WReach_r[w] : w} (the paper's equality (2))."""
    g = small_graph
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        a = domset_sequential(g, order, radius)
        b = domset_by_wreach(g, order, radius)
        assert a.dominators == b.dominators
        assert np.array_equal(a.dominator_of, b.dominator_of)


@pytest.mark.parametrize("radius", [1, 2])
def test_output_is_dominating(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_dominator_of_is_min_wreach(small_graph):
    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    res = domset_sequential(g, order, radius)
    wr = wreach_sets(g, order, radius)
    for w in range(g.n):
        assert res.dominator_of[w] == order.min_of(wr[w])


def test_dominator_within_distance(small_graph):
    from repro.graphs.traversal import bfs_distances

    g = small_graph
    order, _ = degeneracy_order(g)
    radius = 2
    res = domset_sequential(g, order, radius)
    for w in range(g.n):
        d = bfs_distances(g, int(res.dominator_of[w]), max_dist=radius)
        assert d[w] != -1


def test_radius_zero_selects_everything():
    g = gen.grid_2d(3, 3)
    order = LinearOrder.identity(9)
    res = domset_sequential(g, order, 0)
    assert res.dominators == tuple(range(9))
    assert all(res.dominator_of[v] == v for v in range(9))


def test_negative_radius_rejected():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        domset_sequential(g, LinearOrder.identity(3), -1)


def test_order_size_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        domset_sequential(g, LinearOrder.identity(4), 1)


def test_theorem5_bound_holds_on_small_instances():
    """|D| <= c(r) * OPT with c(r) = max |WReach_2r| (measured)."""
    graphs = [
        gen.path_graph(12),
        gen.cycle_graph(10),
        gen.grid_2d(3, 5),
        gen.star_graph(10),
        gen.balanced_tree(2, 3),
    ]
    for g in graphs:
        for radius in (1, 2):
            order, _ = degeneracy_order(g)
            res = domset_sequential(g, order, radius)
            opt, _ = brute_force_domset(g, radius)
            c = wcol_of_order(g, order, 2 * radius)
            assert res.size <= c * opt, (g, radius, res.size, c, opt)


def test_theorem5_bound_random_orders():
    """The guarantee is order-independent (with the order's own c)."""
    g = gen.grid_2d(4, 4)
    opt, _ = brute_force_domset(g, 1)
    for seed in range(5):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        res = domset_sequential(g, order, 1)
        c = wcol_of_order(g, order, 2)
        assert res.size <= c * opt


def test_path_identity_order_structure():
    # Path with identity order: min WReach_1[w] = w-1 (or 0 for w=0),
    # so D = {0, 1, ..., n-2}.
    g = gen.path_graph(5)
    res = domset_sequential(g, LinearOrder.identity(5), 1)
    assert res.dominators == (0, 1, 2, 3)


def test_star_center_last_gives_singleton():
    # Star: order the center L-least -> every leaf elects the center.
    g = gen.star_graph(8)
    order = LinearOrder.from_sequence([0, 1, 2, 3, 4, 5, 6, 7])
    res = domset_sequential(g, order, 1)
    assert res.dominators == (0,)


def test_star_center_first_still_dominates():
    # Center L-greatest: leaves elect themselves (no smaller weak reach).
    g = gen.star_graph(5)
    order = LinearOrder.from_sequence([1, 2, 3, 4, 0])
    res = domset_sequential(g, order, 1)
    assert is_distance_r_dominating_set(g, res.dominators, 1)
    assert 1 in res.dominators


def test_disconnected_graph_all_components_covered():
    g = from_edges(6, [(0, 1), (2, 3), (4, 5)])
    order = LinearOrder.identity(6)
    res = domset_sequential(g, order, 1)
    assert is_distance_r_dominating_set(g, res.dominators, 1)
    assert {0, 2, 4} <= set(res.dominators)


def test_result_membership_helper():
    g = gen.path_graph(4)
    res = domset_sequential(g, LinearOrder.identity(4), 1)
    mem = res.membership(4)
    assert mem.dtype == bool
    assert set(np.flatnonzero(mem).tolist()) == set(res.dominators)


def test_large_radius_single_dominator():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    res = domset_sequential(g, order, 10)
    # Radius exceeds the diameter: the L-least vertex dominates everyone.
    least = int(order.by_rank[0])
    assert res.dominators == (least,)


# ----------------------------------------------------------------------
# Vectorized CSR consumer vs the retained list-based reference
# ----------------------------------------------------------------------

def _assert_same(a, b):
    assert a.dominators == b.dominators
    assert np.array_equal(a.dominator_of, b.dominator_of)
    assert a.radius == b.radius


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_csr_election_equals_list_reference(small_graph, radius):
    """domset_by_wreach (vectorized) == domset_by_wreach_lists, all orders."""
    from repro.core.domset import domset_by_wreach_lists

    g = small_graph
    orders = [degeneracy_order(g)[0], LinearOrder.identity(g.n)]
    for seed in (0, 1, 2):
        rng = np.random.default_rng(seed)
        orders.append(LinearOrder.from_sequence(rng.permutation(g.n)))
    for order in orders:
        _assert_same(
            domset_by_wreach(g, order, radius),
            domset_by_wreach_lists(g, order, radius),
        )


def test_csr_election_accepts_precomputed_inputs():
    from repro.orders.wreach import RankedAdjacency, wreach_csr

    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    adj = RankedAdjacency(g, order)
    csr = wreach_csr(g, order, 2, adj=adj)
    _assert_same(
        domset_by_wreach(g, order, 2, csr=csr),
        domset_by_wreach(g, order, 2),
    )
    _assert_same(
        domset_by_wreach(g, order, 2, adj=adj),
        domset_by_wreach(g, order, 2),
    )


def test_legacy_wreach_lists_argument_still_served():
    """Passing precomputed lists routes through the reference path."""
    from repro.orders.wreach import wreach_sets

    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    wr = wreach_sets(g, order, 2)
    _assert_same(
        domset_by_wreach(g, order, 2, wreach=wr),
        domset_by_wreach(g, order, 2),
    )


def test_empty_graph_all_variants():
    from repro.core.domset import domset_by_wreach_lists

    g = from_edges(0, [])
    order = LinearOrder.identity(0)
    for fn in (domset_sequential, domset_by_wreach, domset_by_wreach_lists):
        res = fn(g, order, 1)
        assert res.dominators == ()
        assert len(res.dominator_of) == 0


def test_single_vertex_graph_all_variants():
    from repro.core.domset import domset_by_wreach_lists

    g = from_edges(1, [])
    order = LinearOrder.identity(1)
    for radius in (0, 1, 2):
        for fn in (domset_sequential, domset_by_wreach, domset_by_wreach_lists):
            res = fn(g, order, radius)
            assert res.dominators == (0,)
            assert res.dominator_of.tolist() == [0]


@pytest.mark.parametrize("radius", [1, 2])
def test_disconnected_graph_csr_equals_reference(radius):
    from repro.core.domset import domset_by_wreach_lists

    g = from_edges(9, [(0, 1), (1, 2), (4, 5), (7, 8)])  # + isolated 3, 6
    for seed in (0, 1, 2, 3):
        rng = np.random.default_rng(seed)
        order = LinearOrder.from_sequence(rng.permutation(g.n))
        a = domset_by_wreach(g, order, radius)
        _assert_same(a, domset_by_wreach_lists(g, order, radius))
        _assert_same(a, domset_sequential(g, order, radius))
        assert is_distance_r_dominating_set(g, a.dominators, radius)


def test_radius_one_matches_reference_on_structured_graphs():
    from repro.core.domset import domset_by_wreach_lists

    for g in (gen.grid_2d(5, 5), gen.star_graph(9), gen.cycle_graph(11)):
        order, _ = degeneracy_order(g)
        _assert_same(
            domset_by_wreach(g, order, 1),
            domset_by_wreach_lists(g, order, 1),
        )


def test_greedy_tie_breaks_preserved():
    """Many vertices electing the same L-least dominator (heavy ties):
    the vectorized election must pick identical winners and the
    Algorithm-1 greedy must agree with it on every order."""
    from repro.core.domset import domset_by_wreach_lists

    graphs = [
        gen.complete_graph(9),          # every vertex elects the L-least
        gen.star_graph(10),             # center/leaf tie structure
        from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (1, 2)]),
    ]
    for g in graphs:
        for seed in range(4):
            rng = np.random.default_rng(seed)
            order = LinearOrder.from_sequence(rng.permutation(g.n))
            a = domset_by_wreach(g, order, 1)
            _assert_same(a, domset_by_wreach_lists(g, order, 1))
            _assert_same(a, domset_sequential(g, order, 1))
    # Complete graph: everyone weakly reaches the L-least vertex.
    g = gen.complete_graph(7)
    order = LinearOrder.from_sequence([3, 0, 1, 2, 4, 5, 6])
    res = domset_by_wreach(g, order, 1)
    assert res.dominators == (3,)
    assert all(d == 3 for d in res.dominator_of)


def test_domset_sequential_shared_adjacency_matches_fresh():
    from repro.orders.wreach import RankedAdjacency

    g = gen.grid_2d(6, 6)
    order, _ = degeneracy_order(g)
    adj = RankedAdjacency(g, order)
    _assert_same(
        domset_sequential(g, order, 2, adj=adj),
        domset_sequential(g, order, 2),
    )


def test_dominators_and_dominator_of_are_plain_ints():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    res = domset_by_wreach(g, order, 1)
    assert all(type(d) is int for d in res.dominators)
    assert res.dominator_of.dtype == np.int64


def test_mismatched_precomputed_csr_rejected():
    from repro.orders.wreach import wreach_csr

    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    wrong_reach = wreach_csr(g, order, 1)
    with pytest.raises(OrderError):
        domset_by_wreach(g, order, 2, csr=wrong_reach)
    h = gen.grid_2d(4, 4)
    other, _ = degeneracy_order(h)
    with pytest.raises(OrderError):
        domset_by_wreach(g, order, 2, csr=wreach_csr(h, other, 2))


def test_csr_for_different_order_rejected():
    from repro.orders.wreach import wreach_csr

    g = gen.grid_2d(5, 5)
    order_a, _ = degeneracy_order(g)
    order_b = LinearOrder.from_sequence(
        np.random.default_rng(7).permutation(g.n)
    )
    csr = wreach_csr(g, order_a, 2)
    with pytest.raises(OrderError):
        domset_by_wreach(g, order_b, 2, csr=csr)
