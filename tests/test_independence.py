"""Scattered-set lower bounds."""

import pytest

from repro.core.exact import exact_domset, lp_lower_bound
from repro.core.independence import (
    greedy_scattered_set,
    is_scattered,
    scattered_lower_bound,
)
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph


def test_is_scattered():
    g = gen.path_graph(10)
    assert is_scattered(g, [0, 5], 4)
    assert not is_scattered(g, [0, 4], 4)
    assert is_scattered(g, [3], 2)
    assert is_scattered(g, [], 5)


def test_is_scattered_range_check():
    with pytest.raises(GraphError):
        is_scattered(gen.path_graph(3), [5], 1)


@pytest.mark.parametrize("sep", [0, 1, 2, 3])
def test_greedy_output_is_scattered_and_maximal(small_graph, sep):
    g = small_graph
    s = greedy_scattered_set(g, sep)
    assert is_scattered(g, s, sep)
    # Maximality: every vertex is within sep of a member.
    from repro.graphs.traversal import multi_source_distances

    if s:
        dist = multi_source_distances(g, s, max_dist=sep)
        assert (dist != -1).all()


@pytest.mark.parametrize("radius", [1, 2])
def test_lower_bound_below_opt(small_graph, radius):
    g = small_graph
    lb = scattered_lower_bound(g, radius)
    opt, _ = exact_domset(g, radius)
    assert lb <= opt


def test_lower_bound_tight_on_paths():
    # On P_n, both the scattered bound and gamma_r equal ceil(n/(2r+1)).
    for n in (7, 10, 15):
        for r in (1, 2):
            g = gen.path_graph(n)
            assert scattered_lower_bound(g, r) == -(-n // (2 * r + 1))


def test_bound_can_beat_or_lose_to_lp():
    """Neither bound dominates the other; both are <= OPT."""
    g1 = gen.star_graph(9)
    assert scattered_lower_bound(g1, 1) == 1
    g2, _ = delaunay_graph(60, seed=3)
    comb = scattered_lower_bound(g2, 1)
    lp = lp_lower_bound(g2, 1)
    opt, _ = exact_domset(g2, 1)
    assert comb <= opt and lp <= opt + 1e-9


def test_custom_order():
    g = gen.path_graph(9)
    s = greedy_scattered_set(g, 2, order=[4, 0, 8])
    assert s == (0, 4, 8)  # hand-picked spread is accepted greedily... no:
    # 0 and 4 are at distance 4 > 2 OK; 8 at distance 4 from 4 OK.
    assert is_scattered(g, s, 2)


def test_separation_zero_takes_everything():
    g = gen.grid_2d(3, 3)
    assert len(greedy_scattered_set(g, 0)) == 9


def test_negative_separation_rejected():
    with pytest.raises(GraphError):
        greedy_scattered_set(gen.path_graph(3), -1)
    with pytest.raises(GraphError):
        scattered_lower_bound(gen.path_graph(3), -1)


def test_empty_graph():
    assert greedy_scattered_set(from_edges(0, []), 2) == ()
