"""D203: unseeded randomness in algorithm code."""

import random


class NodeAlgorithm:
    pass


class CoinFlipNode(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        # The module-level generator is seeded from OS entropy; two runs
        # of the simulator produce different protocols.
        if random.random() < 0.5:
            return ("heads", ctx.node)
        return None
