"""D201: set iteration order reaching an emission."""


class NodeAlgorithm:
    pass


class SetOrderNode(NodeAlgorithm):
    def __init__(self):
        self.pending = set()

    def on_round(self, ctx, inbox):
        # tuple(...) preserves whatever order the set happens to yield.
        return ("batch", tuple(v for v in self.pending))
