"""R301: registration capabilities disagree with the fields read."""


def register_solver(name, capabilities=None):
    def deco(fn):
        return fn

    return deco


class SolverCapabilities:
    def __init__(self, **kw):
        pass


@register_solver(
    "fixture.bad", capabilities=SolverCapabilities(engines=("batch", "pernode"))
)
def solve_fixture(req, cache):
    # Reads a field SolveRequest does not define, and never consults
    # req.engine despite declaring two engines.
    return req.radiuss
