"""M104: mutable class-level attribute shared by all node instances."""


class NodeAlgorithm:
    pass


class SharedStateNode(NodeAlgorithm):
    # One list object shared by every node in the network.
    seen = []

    def on_round(self, ctx, inbox):
        self.seen.append(ctx.node)
        return None
