"""Deliberately non-conformant modules exercising each repro.lint rule.

Every fixture is a minimal algorithm (or registration) that trips
exactly one rule; ``tests/test_lint_rules.py`` asserts the findings and
that a justified ``reprolint: ignore[...]`` comment silences each one.
These files are never imported by the package — they exist only as
linter input.
"""
