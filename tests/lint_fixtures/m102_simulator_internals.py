"""M102: algorithm code reaching into simulator internals."""


class NodeAlgorithm:
    pass


class CheatingNode(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        # Touching the Network, or private attributes of objects other
        # than self, bypasses the message-passing model entirely.
        return ("spy", inbox._pending)
