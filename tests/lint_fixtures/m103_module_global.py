"""M103: algorithm code touching a module-level mutable global."""


class NodeAlgorithm:
    pass


SHARED_BLACKBOARD = {}


class GossipingNode(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        # Module-level state is shared by every simulated node — a free
        # side channel that no real network provides.
        SHARED_BLACKBOARD[ctx.node] = True
        return None
