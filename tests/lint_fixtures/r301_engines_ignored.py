"""R301: two engines declared, request engine never consulted."""


def register_solver(name, capabilities=None):
    def deco(fn):
        return fn

    return deco


class SolverCapabilities:
    def __init__(self, **kw):
        pass


@register_solver(
    "fixture.deaf", capabilities=SolverCapabilities(engines=("batch", "pernode"))
)
def solve_fixture(req, cache):
    # Declares both engines but always runs the same path: a request
    # for the non-default engine would silently be ignored.
    return req.radius
