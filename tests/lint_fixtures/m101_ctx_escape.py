"""M101: reads a NodeContext attribute outside the locality contract."""


class NodeAlgorithm:
    pass


class PeekingNode(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        # A CONGEST_BC node only knows its own id, its neighbors, n and
        # the advice; ``ctx.graph`` would be global knowledge.
        return ("peek", ctx.graph.n)
