"""R302: bypassing the PrecomputeCache typed API."""


class PrecomputeCache:
    pass


def peek_wreach(cache: PrecomputeCache, key):
    # The typed accessors (wreach_csr, order, ...) are the contract;
    # reaching into the private table dict skips staleness checks.
    return cache._tables[key]
