"""M105: emitted payload aliases a mutable attribute of the sender."""


class NodeAlgorithm:
    pass


class AliasingNode(NodeAlgorithm):
    def __init__(self):
        self.buffer = []

    def on_round(self, ctx, inbox):
        self.buffer.append(ctx.node)
        # The receiver gets a reference to the sender's live list; any
        # later append is invisible-teleportation between nodes.
        return ("state", self.buffer)
