"""D204: CPython object identity used as a key."""


class NodeAlgorithm:
    pass


class IdentityKeyNode(NodeAlgorithm):
    def __init__(self):
        self.memo = {}

    def on_round(self, ctx, inbox):
        token = ("elect", ctx.node)
        self.memo[id(token)] = token
        return token
