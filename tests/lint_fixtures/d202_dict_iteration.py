"""D202: dict insertion order reaching an emission."""


class NodeAlgorithm:
    pass


class DictOrderNode(NodeAlgorithm):
    def __init__(self):
        self.paths = {}

    def on_round(self, ctx, inbox):
        out = []
        for u, path in self.paths.items():
            out.append((u, path))
        return ("paths", tuple(out))
