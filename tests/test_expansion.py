"""Bounded-expansion diagnostics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.expansion import (
    arboricity_lower_bound,
    degeneracy,
    is_valid_minor_model,
    shallow_minor_density,
)


def test_degeneracy_known_values():
    assert degeneracy(gen.path_graph(10)) == 1
    assert degeneracy(gen.cycle_graph(8)) == 2
    assert degeneracy(gen.grid_2d(5, 5)) == 2
    assert degeneracy(gen.complete_graph(6)) == 5
    assert degeneracy(gen.balanced_tree(3, 3)) == 1
    assert degeneracy(gen.k_tree(15, 3, seed=0)) == 3
    assert degeneracy(gen.triangular_grid(5, 5)) == 3


def test_arboricity_lower_bound():
    g = gen.complete_graph(5)  # m=10, n=5 -> bound 2.5
    assert arboricity_lower_bound(g) == pytest.approx(2.5)
    assert arboricity_lower_bound(gen.path_graph(1)) == 0.0


def test_shallow_minor_density_bounded_on_grid():
    # On a planar graph every minor is planar: average degree < 6.
    g = gen.grid_2d(12, 12)
    for r in (0, 1, 2):
        assert shallow_minor_density(g, r, trials=3, seed=1) < 6.0


def test_shallow_minor_density_detects_hidden_density():
    # The 2-subdivision of K_12 is sparse (avg deg < 3) but its depth-1
    # minors include K_12-ish quotients with much higher density.
    k = gen.complete_graph(12)
    s = gen.subdivide(k, 2)
    assert s.average_degree() < 3.0
    d0 = shallow_minor_density(s, 0, trials=3, seed=0)
    d2 = shallow_minor_density(s, 2, trials=6, seed=0)
    assert d2 > d0
    assert d2 > 4.0


def test_shallow_minor_density_radius_zero_is_avg_degree():
    g = gen.cycle_graph(10)
    assert shallow_minor_density(g, 0, trials=1) >= g.average_degree()


def test_shallow_minor_density_rejects_negative_radius():
    with pytest.raises(GraphError):
        shallow_minor_density(gen.path_graph(3), -1)


def test_is_valid_minor_model():
    g = gen.path_graph(6)
    ok = np.array([0, 0, 1, 1, 2, 2])
    assert is_valid_minor_model(g, ok, radius=1)
    # Class {0, 3} is disconnected in the path.
    bad = np.array([0, 1, 1, 0, 2, 2])
    assert not is_valid_minor_model(g, bad)


def test_is_valid_minor_model_radius_check():
    g = gen.path_graph(7)
    labels = np.zeros(7, dtype=np.int64)  # one branch set: the whole path
    assert is_valid_minor_model(g, labels, radius=3)
    assert not is_valid_minor_model(g, labels, radius=2)


def test_is_valid_minor_model_ignores_unassigned():
    g = gen.path_graph(5)
    labels = np.array([0, 0, -1, 1, 1])
    assert is_valid_minor_model(g, labels, radius=1)
