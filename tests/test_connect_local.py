"""Lemma 16 / Theorem 17: LOCAL connectifier in 3r+1 rounds."""

import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.core.connect import connect_via_minor
from repro.core.domset import domset_sequential
from repro.distributed.connect_local import local_connectify
from repro.distributed.lenzen import lenzen_planar_mds
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph, random_tree
from repro.orders.degeneracy import degeneracy_order


def _zoo():
    return [
        ("grid5x6", gen.grid_2d(5, 6)),
        ("tri4x5", gen.triangular_grid(4, 5)),
        ("tree", random_tree(40, seed=2)),
        ("delaunay", delaunay_graph(50, seed=3)[0]),
    ]


@pytest.mark.parametrize("radius", [1, 2])
def test_output_connected_dominating(radius):
    for name, g in _zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = local_connectify(g, ds.dominators, radius)
        assert is_connected_distance_r_dominating_set(
            g, res.connected_set, radius
        ), name


@pytest.mark.parametrize("radius", [1, 2])
def test_equals_sequential_minor_construction(radius):
    """LOCAL (ball-based) output == global Lemma-16 reference — exactly."""
    for name, g in _zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        local = local_connectify(g, ds.dominators, radius)
        seq = connect_via_minor(g, ds.dominators, radius)
        assert set(local.connected_set) == set(seq.vertices), name


def test_round_count_is_3r_plus_1():
    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    for radius in (1, 2, 3):
        ds = domset_sequential(g, order, radius)
        res = local_connectify(g, ds.dominators, radius)
        assert res.rounds == 3 * radius + 1


def test_size_bound_via_minor_edges():
    """|D'| <= |D| + 2r * |E(H)| (Lemma 16's accounting)."""
    for name, g in _zoo():
        order, _ = degeneracy_order(g)
        for radius in (1, 2):
            ds = domset_sequential(g, order, radius)
            res = local_connectify(g, ds.dominators, radius)
            assert res.size <= ds.size + 2 * radius * len(res.minor_edges), name


def test_planar_blowup_at_most_seven():
    """Theorem 17 on planar graphs at r=1: |D'| <= (2rd + 1)|D| = 7|D|."""
    for name, g in _zoo():
        mds = lenzen_planar_mds(g)
        res = local_connectify(g, mds.dominators, 1)
        assert res.blowup <= 7.0, (name, res.blowup)


def test_pipeline_with_lenzen():
    g, _ = delaunay_graph(80, seed=5)
    mds = lenzen_planar_mds(g)
    res = local_connectify(g, mds.dominators, 1)
    assert is_connected_distance_r_dominating_set(g, res.connected_set, 1)
    assert mds.rounds + res.rounds <= 11  # constant overall


def test_empty_dominators_rejected():
    with pytest.raises(SimulationError):
        local_connectify(gen.path_graph(3), [], 1)


def test_already_connected_is_noop_sized():
    # A single dominator needs no connecting paths.
    g = gen.star_graph(8)
    res = local_connectify(g, [0], 1)
    assert res.connected_set == (0,)
    assert res.minor_edges == ()


def test_oracle_equals_messages():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    a = local_connectify(g, ds.dominators, 1, mode="oracle")
    b = local_connectify(g, ds.dominators, 1, mode="messages")
    assert a.connected_set == b.connected_set
