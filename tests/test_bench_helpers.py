"""The bench support package itself."""

import pytest

from repro.bench.tables import Table
from repro.bench.workloads import WORKLOADS, scaling_family, workload
from repro.graphs.components import is_connected


def test_all_workloads_build_and_are_connected():
    for name, w in WORKLOADS.items():
        g = w.graph()
        assert g.n > 0, name
        assert is_connected(g), name


def test_workloads_deterministic():
    for name in ("delaunay400", "chunglu500", "tree500"):
        assert WORKLOADS[name].graph() == WORKLOADS[name].graph()


def test_planarity_flags_honest():
    import networkx as nx

    from repro.graphs.build import to_networkx

    for name, w in WORKLOADS.items():
        if w.graph().n > 600:
            continue
        ok, _ = nx.check_planarity(to_networkx(w.graph()))
        if w.planar:
            assert ok, f"{name} claims planar but is not"


def test_workload_lookup():
    assert workload("grid16").family == "grid"
    with pytest.raises(KeyError):
        workload("nope")


def test_scaling_family_sizes():
    fam = scaling_family("grid", [100, 400])
    assert [n for n, _ in fam] == [100, 400]
    fam2 = scaling_family("delaunay", [128])
    assert fam2[0][1].n == 128
    with pytest.raises(KeyError):
        scaling_family("marsdust", [10])


def test_table_rendering():
    t = Table("demo", ["a", "bb"])
    t.add(1, 2.5)
    t.add("xyz", 100.123)
    text = t.render()
    assert "== demo ==" in text
    assert "a" in text and "bb" in text
    lines = text.splitlines()
    assert len(lines) == 5  # title, header, rule, 2 rows
    # Column alignment: each data row has the separator at the same place.
    assert lines[3].index("|") == lines[4].index("|")


def test_table_arity_check():
    t = Table("demo", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_write_result(tmp_path, monkeypatch):
    import repro.bench.harness as harness

    monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
    t = Table("demo", ["x"])
    t.add(42)
    text = harness.write_result("unit_demo", t)
    assert "42" in text
    assert (tmp_path / "unit_demo.txt").read_text().strip().endswith("42")
