"""The ``repro.lint`` rule corpus: every rule fires, every rule silences.

For each fixture under ``tests/lint_fixtures/`` we assert that linting
it trips *exactly* the rule it is named after, and that appending a
justified ``# reprolint: ignore[RULE]`` comment to each flagged line
silences it completely.  The framework's own meta rules (LNT001-LNT003),
the JSON report schema, the exit-code policy, and the CLI surface are
covered below; the final test pins the whole ``src/`` tree clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import ALL_PASSES, ALL_RULES, lint_source, main, run
from repro.lint.framework import LintReport

FIXTURES = Path(__file__).parent / "lint_fixtures"

#: fixture file stem -> the one rule id it must trip (and nothing else).
FIXTURE_RULES = {
    "m101_ctx_escape": "M101",
    "m102_simulator_internals": "M102",
    "m103_module_global": "M103",
    "m104_class_state": "M104",
    "m105_payload_alias": "M105",
    "d201_set_iteration": "D201",
    "d202_dict_iteration": "D202",
    "d203_unseeded_random": "D203",
    "d204_id_keys": "D204",
    "r301_caps_mismatch": "R301",
    "r301_engines_ignored": "R301",
    "r302_cache_reachin": "R302",
}

PASS_RULE_PREFIXES = {"conformance": "M1", "determinism": "D2", "registry": "R3"}


def _lint_text(source: str, path: str = "fixture.py"):
    return lint_source(source, path, ALL_PASSES)


@pytest.mark.parametrize("stem,rule", sorted(FIXTURE_RULES.items()))
def test_fixture_trips_exactly_its_rule(stem: str, rule: str) -> None:
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    findings = _lint_text(source, f"{stem}.py")
    assert findings, f"{stem} produced no findings"
    assert {f.rule_id for f in findings} == {rule}
    assert all(not f.suppressed for f in findings)
    assert all(f.severity == "error" for f in findings)


@pytest.mark.parametrize("stem,rule", sorted(FIXTURE_RULES.items()))
def test_justified_suppression_silences_fixture(stem: str, rule: str) -> None:
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    flagged = {f.line for f in _lint_text(source, f"{stem}.py")}
    lines = source.splitlines()
    for ln in flagged:
        lines[ln - 1] += f"  # reprolint: ignore[{rule}] -- fixture exception"
    findings = _lint_text("\n".join(lines) + "\n", f"{stem}.py")
    active = [f for f in findings if not f.suppressed]
    assert active == [], [f.render() for f in active]
    assert {f.rule_id for f in findings if f.suppressed} == {rule}


@pytest.mark.parametrize("prefix", sorted(PASS_RULE_PREFIXES.values()))
def test_each_pass_has_at_least_two_fixtures(prefix: str) -> None:
    hits = [r for r in FIXTURE_RULES.values() if r.startswith(prefix)]
    assert len(hits) >= 2, f"pass {prefix}xx needs >= 2 fixture rules"


def test_unjustified_suppression_is_lnt001_error() -> None:
    source = (FIXTURES / "d204_id_keys.py").read_text(encoding="utf-8")
    line = next(iter({f.line for f in _lint_text(source)}))
    lines = source.splitlines()
    lines[line - 1] += "  # reprolint: ignore[D204]"
    findings = _lint_text("\n".join(lines) + "\n")
    by_rule = {f.rule_id: f for f in findings}
    assert by_rule["D204"].suppressed  # the silencing itself still works
    lnt = by_rule["LNT001"]
    assert lnt.severity == "error" and not lnt.suppressed
    assert "justification" in lnt.message


def test_stale_suppression_is_lnt002_warning() -> None:
    findings = _lint_text(
        "x = 1  # reprolint: ignore[D204] -- nothing here to suppress\n"
    )
    assert [f.rule_id for f in findings] == ["LNT002"]
    assert findings[0].severity == "warning"
    # Warnings alone never fail the run.
    report = LintReport(findings=findings, files_checked=1)
    assert report.exit_code == 0


def test_syntax_error_is_lnt003() -> None:
    findings = _lint_text("def broken(:\n")
    assert [f.rule_id for f in findings] == ["LNT003"]
    assert findings[0].severity == "error"


def test_report_json_schema_and_exit_code(tmp_path: Path) -> None:
    report = run([str(FIXTURES)])
    assert report.exit_code == 1  # fixtures are all unsuppressed errors
    doc = report.to_dict()
    assert doc["schema"] == 1
    assert doc["files_checked"] == len(FIXTURE_RULES) + 1  # + __init__.py
    assert doc["summary"]["errors"] == len(report.errors) > 0
    assert doc["summary"]["suppressed"] == 0
    for item in doc["findings"]:
        assert set(item) == {
            "rule", "severity", "path", "line", "col", "message", "suppressed",
        }
        assert item["rule"] in ALL_RULES
    # Round-trips through json.
    assert json.loads(report.to_json()) == doc


def test_cli_json_output_and_exit_codes(tmp_path, capsys) -> None:
    out_file = tmp_path / "report.json"
    rc = main(
        [
            str(FIXTURES / "d202_dict_iteration.py"),
            "--format",
            "json",
            "--output",
            str(out_file),
        ]
    )
    assert rc == 1
    printed = json.loads(capsys.readouterr().out)
    on_disk = json.loads(out_file.read_text(encoding="utf-8"))
    assert printed == on_disk
    assert [f["rule"] for f in printed["findings"]] == ["D202"]

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule_id in ALL_RULES:
        assert rule_id in listing


def test_src_tree_is_clean() -> None:
    """The shipped tree passes its own linter (CI's repro-lint job)."""
    src = Path(__file__).parent.parent / "src"
    report = run([str(src)])
    assert report.errors == [], [f.render() for f in report.errors]
    assert report.warnings == [], [f.render() for f in report.warnings]
    # Every suppression in the tree carries a justification by
    # construction (LNT001 would have fired above); there are some.
    assert any(f.suppressed for f in report.findings)
