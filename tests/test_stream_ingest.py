"""Streaming CSR ingest and binary npz edge lists.

The contract under test: ``from_edges_stream`` and the ``.npz`` reader
are *bit-identical* to ``from_edges`` on the same edge multiset —
duplicates (within and across chunks) merge, self-loops raise, input
order is irrelevant — and the vectorized ``from_adjacency`` symmetry
check matches the old Python-set semantics.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.build import from_adjacency, from_edges, from_edges_stream
from repro.graphs.io import (
    iter_edge_chunks,
    open_edge_npz,
    read_edge_npz,
    write_edge_npz,
)


def _random_edges(n: int, m: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    arr = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    return arr[arr[:, 0] != arr[:, 1]]


def _assert_identical(a, b):
    assert a.n == b.n and a.m == b.m
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert a.indptr.dtype == b.indptr.dtype
    assert a.indices.dtype == b.indices.dtype


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("chunk", [1, 7, 137, 10_000])
def test_stream_bit_identical_to_from_edges(seed, chunk):
    n = 300
    edges = _random_edges(n, 2500, seed)  # unsorted, with duplicates
    ref = from_edges(n, edges)
    chunks = [edges[i : i + chunk] for i in range(0, len(edges), chunk)]
    _assert_identical(from_edges_stream(n, chunks), ref)


def test_stream_dedups_across_chunks():
    n = 10
    a = np.array([[0, 1], [2, 3], [1, 0]])
    b = np.array([[3, 2], [0, 1], [4, 5]])
    g = from_edges_stream(n, [a, b])
    ref = from_edges(n, np.concatenate([a, b]))
    _assert_identical(g, ref)
    assert g.m == 3


def test_stream_accepts_pair_sequences_and_empty_chunks():
    g = from_edges_stream(5, [[(0, 1)], [], np.empty((0, 2)), [(1, 2), (0, 1)]])
    _assert_identical(g, from_edges(5, [(0, 1), (1, 2)]))


def test_stream_empty_and_no_chunks():
    assert from_edges_stream(4, []).n == 4
    assert from_edges_stream(0, []).n == 0
    with pytest.raises(GraphError):
        from_edges_stream(-1, [])


def test_stream_rejects_self_loops_and_out_of_range():
    with pytest.raises(GraphError):
        from_edges_stream(5, [np.array([[0, 0]])])
    with pytest.raises(GraphError):
        from_edges_stream(5, [np.array([[0, 5]])])
    with pytest.raises(GraphError):
        from_edges_stream(5, [np.array([[0, 1, 2]])])


# ----------------------------------------------------------------------
# Vectorized from_adjacency
# ----------------------------------------------------------------------

def test_from_adjacency_matches_from_edges():
    edges = _random_edges(60, 400, 3)
    ref = from_edges(60, edges)
    _assert_identical(from_adjacency(ref.adjacency_lists()), ref)


def test_from_adjacency_tolerates_duplicate_entries():
    # Duplicates within rows merged by from_edges; symmetry judged on
    # the unique arc set (the old Python-set semantics).
    g = from_adjacency([[1, 1], [0, 0, 2], [1]])
    assert g.m == 2


def test_from_adjacency_rejects_asymmetric_with_precise_arc():
    with pytest.raises(GraphError, match=r"\(2,0\) missing reverse"):
        from_adjacency([[1], [0, 2], [0, 1]])


def test_from_adjacency_empty_rows():
    g = from_adjacency([[], [], []])
    assert g.n == 3 and g.m == 0


# ----------------------------------------------------------------------
# Binary npz edge lists
# ----------------------------------------------------------------------

def test_npz_roundtrip_streaming(tmp_path):
    n = 200
    g = from_edges(n, _random_edges(n, 1500, 5))
    path = tmp_path / "g.npz"
    write_edge_npz(g, path)
    for chunk in (17, 10**6):
        _assert_identical(read_edge_npz(path, chunk_edges=chunk), g)


def test_npz_open_returns_memory_map(tmp_path):
    g = from_edges(50, _random_edges(50, 300, 6))
    path = tmp_path / "g.npz"
    write_edge_npz(g, path)
    n, edges = open_edge_npz(path)
    assert n == 50
    assert isinstance(edges, np.memmap)
    assert np.array_equal(np.asarray(edges), g.edge_array())


def test_npz_truncated_file_raises(tmp_path):
    g = from_edges(50, _random_edges(50, 300, 7))
    path = tmp_path / "g.npz"
    write_edge_npz(g, path)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(GraphError):
        read_edge_npz(path)


def test_npz_garbage_file_raises(tmp_path):
    path = tmp_path / "g.npz"
    path.write_bytes(b"not an npz file at all")
    with pytest.raises(GraphError):
        read_edge_npz(path)


def test_iter_edge_chunks_covers_all_rows():
    edges = _random_edges(40, 100, 8)
    parts = list(iter_edge_chunks(edges, 13))
    assert np.array_equal(np.concatenate(parts), edges)
    with pytest.raises(GraphError):
        list(iter_edge_chunks(edges, 0))


def test_cli_npz_dispatch(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "grid.npz"
    assert main(["generate", "grid", "6", "6", "-o", str(out)]) == 0
    assert main(["solve", str(out), "-a", "seq.rdomset-orient", "-r", "2"]) == 0
    text = capsys.readouterr().out
    assert "algorithm = seq.rdomset-orient" in text
