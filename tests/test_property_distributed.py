"""Property tests across the whole distributed stack (hypothesis).

Random connected graphs; the invariants are the strongest in the repo:
all four implementations of the Theorem-5/9 dominating set (definition,
Algorithm 1, phased CONGEST_BC, unified single-execution) must agree
*exactly*, and the pipelined executor must reproduce plain outputs at
any bandwidth.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
)
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.nd_order import default_threshold, distributed_h_partition_order
from repro.distributed.unified_bc import run_unified_bc
from repro.graphs.build import from_edges


@st.composite
def connected_graph(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    edges = [(draw(st.integers(min_value=0, max_value=v - 1)), v) for v in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=n,
        )
    )
    edges += [(u, v) for u, v in extra if u != v]
    return from_edges(n, edges)


@given(connected_graph(), st.integers(min_value=1, max_value=2))
@settings(max_examples=25, deadline=None)
def test_four_way_agreement(g, radius):
    thr = default_threshold(g)
    oc = distributed_h_partition_order(g, thr)
    a = domset_by_wreach(g, oc.order, radius)
    b = domset_sequential(g, oc.order, radius)
    c = run_domset_bc(g, radius, oc)
    d = run_unified_bc(g, radius, threshold=thr)
    assert a.dominators == b.dominators == c.dominators == d.dominators
    assert np.array_equal(a.dominator_of, d.dominator_of)
    assert is_distance_r_dominating_set(g, d.dominators, radius)


@given(connected_graph(max_n=10), st.integers(min_value=1, max_value=2))
@settings(max_examples=15, deadline=None)
def test_unified_connect_validity(g, radius):
    res = run_unified_bc(g, radius, connect=True)
    assert is_connected_distance_r_dominating_set(g, res.connected_set, radius)


@given(connected_graph(max_n=10), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_pipelined_wreach_any_bandwidth(g, words):
    from repro.distributed.pipelining import run_pipelined
    from repro.distributed.wreach_bc import WReachNode, run_wreach_bc

    oc = distributed_h_partition_order(g)
    horizon = 2
    plain, _ = run_wreach_bc(g, oc.class_ids, horizon)
    advice = {"class_ids": np.asarray(oc.class_ids, dtype=np.int64)}
    pipe = run_pipelined(
        g, lambda v: WReachNode(horizon), words_per_round=words, advice=advice
    )
    for v in range(g.n):
        assert pipe.outputs[v].wreach == plain[v].wreach
        assert pipe.outputs[v].paths == plain[v].paths
