"""End-to-end tests of the ``repro.serve`` daemon.

The ``serve``-marked tests run a real HTTP daemon (in-process threads
or digest-sharded worker processes) and assert the service boundary
preserves the library's semantics: every solver family returns
bit-identical ``SolveResult`` payloads over the wire, warm-path solves
recompute nothing, a digest's traffic stays co-located on one shard,
overload surfaces as ``503 + Retry-After``, deadlines surface as
structured ``RequestFailed`` JSON, and a SIGTERM drain leaves the
store without torn files.  Also run as their own CI job.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import solve, solver_names
from repro.graphs import generators as gen
from repro.serve import ServeClient, ServeDaemon, ServeError
from repro.serve.metrics import LatencyTracker, percentile
from repro.serve.shards import shard_of

REPO_ROOT = Path(__file__).resolve().parent.parent

GRID = gen.grid_2d(5, 5)
TREE = gen.balanced_tree(2, 3)


def _comparable(payload: dict) -> dict:
    """A SolveResult dict minus the one nondeterministic field."""
    out = dict(payload)
    out.pop("wall_time_s", None)
    return out


def _expected(g, radius, algorithm, **kw) -> dict:
    return _comparable(solve(g, radius, algorithm, seed=7, **kw).to_dict())


# ----------------------------------------------------------------------
# In-process daemon: full-registry bit identity and the HTTP contract
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def local_daemon(tmp_path_factory):
    daemon = ServeDaemon(tmp_path_factory.mktemp("serve-local"))
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.fixture(scope="module")
def local_client(local_daemon):
    with ServeClient(local_daemon.url) as client:
        yield client


@pytest.mark.serve
@pytest.mark.parametrize("algorithm", sorted(solver_names()))
def test_daemon_matches_in_process_solve_for_every_solver(
    local_client, algorithm
):
    """The wire round trip is bit-identical to ``solve()`` — full registry."""
    g = TREE if algorithm == "seq.tree-exact" else GRID
    digest = local_client.register(g)["digest"]
    served = local_client.solve(
        digest=digest, radius=1, algorithm=algorithm, seed=7, raw=True
    )
    assert _comparable(served) == _expected(g, 1, algorithm)


@pytest.mark.serve
def test_certificate_connect_and_extras_survive_the_wire(local_client):
    digest = local_client.register(GRID)["digest"]
    served = local_client.solve(
        digest=digest, radius=2, algorithm="seq.wreach", seed=7,
        certify=True, connect=True, validate=True, raw=True,
    )
    assert _comparable(served) == _expected(
        GRID, 2, "seq.wreach", certify=True, connect=True, validate=True
    )
    rebuilt = local_client.solve(
        digest=digest, radius=2, algorithm="seq.wreach", seed=7,
        certify=True, connect=True,
    )
    assert rebuilt.certificate is not None
    assert rebuilt.certificate.solution_size == len(rebuilt.dominators)
    assert rebuilt.connected_set is not None


@pytest.mark.serve
def test_inline_graph_and_npz_register_agree(local_client):
    g = gen.cycle_graph(9)
    via_npz = local_client.register(g)
    via_json = local_client.register(g, npz=False)
    assert via_npz["digest"] == via_json["digest"]
    assert via_npz["n"] == 9 and via_npz["m"] == 9
    inline = local_client.solve(
        graph=g, radius=1, algorithm="seq.greedy", seed=7, raw=True
    )
    by_digest = local_client.solve(
        digest=via_npz["digest"], radius=1, algorithm="seq.greedy", seed=7,
        raw=True,
    )
    assert _comparable(inline) == _comparable(by_digest)


@pytest.mark.serve
def test_register_with_warm_reports_warmed_artifacts(local_client):
    out = local_client.register(gen.grid_2d(6, 6), warm={"radius": 1})
    assert out["warmed"]["wcol"] >= 1
    assert out["warmed"]["radius"] == 1


@pytest.mark.serve
def test_warm_path_recomputes_nothing(local_client):
    """Second solve of a warmed digest: cache hits rise, computes don't."""
    digest = local_client.register(gen.torus_2d(6, 6))["digest"]
    kw = dict(digest=digest, radius=1, algorithm="seq.wreach", seed=7)
    local_client.solve(**kw)
    before = local_client.status()["workspace"]["cache"]
    local_client.solve(**kw)
    after = local_client.status()["workspace"]["cache"]
    assert {k: v["computed"] for k, v in after.items()} == {
        k: v["computed"] for k, v in before.items()
    }
    assert sum(v["hits"] for v in after.values()) > sum(
        v["hits"] for v in before.values()
    )


@pytest.mark.serve
def test_error_mapping_unknown_digest_and_bad_request(local_client):
    with pytest.raises(ServeError) as excinfo:
        local_client.solve(digest="0" * 32, radius=1, algorithm="seq.greedy")
    assert excinfo.value.status == 404
    assert excinfo.value.error["type"] == "UnknownGraph"

    with pytest.raises(ServeError) as excinfo:
        local_client.solve(
            digest="0" * 32, radius=1, algorithm="seq.greedy", bogus=1
        )
    assert excinfo.value.status == 400

    with pytest.raises(ServeError) as excinfo:
        local_client._request("GET", "/v1/nope")
    assert excinfo.value.status == 404


@pytest.mark.serve
def test_solvers_endpoint_dumps_the_whole_registry(local_client):
    listed = local_client.solvers()
    assert set(listed) == set(solver_names())
    assert listed["dist.congest"]["model"] == "CONGEST_BC"


@pytest.mark.serve
def test_status_reports_metrics_and_store_lifecycle(local_client):
    st = local_client.status()
    assert st["uptime_s"] > 0
    assert st["requests"]["total"] >= 1
    assert "seq.wreach" in st["latency_ms"]
    sample = st["latency_ms"]["seq.wreach"]
    assert sample["count"] >= 1
    assert sample["p50_ms"] <= sample["p95_ms"] <= sample["p99_ms"]
    lifecycle = st["workspace"]["store"]["lifecycle"]
    assert set(lifecycle) == {
        "leases_total", "leases_active", "quarantined", "quarantined_bytes"
    }


# ----------------------------------------------------------------------
# Pooled daemon: sharded co-location, concurrency, faults, deadlines
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pooled_daemon(tmp_path_factory):
    daemon = ServeDaemon(
        tmp_path_factory.mktemp("serve-pooled"), workers=2, queue_limit=8
    )
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.mark.serve
def test_concurrent_clients_bit_identical_and_digest_colocated(pooled_daemon):
    """Mixed traffic over two digests from concurrent clients: every
    response equals the in-process result, and the worker probes show
    each digest resident on exactly its home shard."""
    graphs = {"grid": gen.grid_2d(7, 7), "tree": gen.balanced_tree(3, 3)}
    with ServeClient(pooled_daemon.url) as setup:
        digests = {k: setup.register(g)["digest"] for k, g in graphs.items()}
    expected = {
        (k, a): _expected(graphs[k], 1, a)
        for k in graphs
        for a in ("seq.wreach", "seq.greedy", "dist.congest")
    }
    failures: list[str] = []

    def hammer(worker_id: int) -> None:
        with ServeClient(pooled_daemon.url) as client:
            for i, (k, a) in enumerate(sorted(expected)):
                if (i + worker_id) % 2:
                    continue
                got = client.solve(
                    digest=digests[k], radius=1, algorithm=a, seed=7, raw=True
                )
                if _comparable(got) != expected[(k, a)]:
                    failures.append(f"{worker_id}:{k}:{a}")

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not failures

    with ServeClient(pooled_daemon.url) as client:
        st = client.status(probe=True)
    residency = {
        w["shard"]: set(w["graphs"]) for w in st["workers_probe"]
    }
    for digest in digests.values():
        home = shard_of(digest, 2)
        assert digest in residency[home]
        assert digest not in residency[1 - home]
        served = st["shards"]["shards"]
        assert served[home]["served"].get(digest, 0) >= 1
        assert digest not in served[1 - home]["served"]


@pytest.mark.serve
def test_pooled_warm_path_recomputes_nothing_in_worker(pooled_daemon):
    """Worker-side cache ground truth: repeat solves hit, never recompute."""
    with ServeClient(pooled_daemon.url) as client:
        digest = client.register(gen.king_graph(5, 5))["digest"]
        kw = dict(digest=digest, radius=1, algorithm="seq.wreach", seed=7)
        client.solve(**kw)
        before = client.status(probe=True)["workers_probe"]
        client.solve(**kw)
        after = client.status(probe=True)["workers_probe"]
    home = shard_of(digest, 2)
    cold = next(w["cache"] for w in before if w["shard"] == home)
    warm = next(w["cache"] for w in after if w["shard"] == home)
    assert {k: v["computed"] for k, v in warm.items()} == {
        k: v["computed"] for k, v in cold.items()
    }
    assert sum(v["hits"] for v in warm.values()) > sum(
        v["hits"] for v in cold.values()
    )


@pytest.mark.serve
def test_deadline_surfaces_as_structured_request_failed(pooled_daemon):
    with ServeClient(pooled_daemon.url) as client:
        digest = client.register(gen.grid_2d(9, 9))["digest"]
        with pytest.raises(ServeError) as excinfo:
            client.solve(
                digest=digest, radius=2, algorithm="seq.exact",
                seed=7, deadline_s=0.001,
            )
    err = excinfo.value
    assert err.status == 504
    assert err.error["type"] == "RequestFailed"
    assert err.reason == "deadline"
    assert err.error["algorithm"] == "seq.exact"
    assert err.error["graph_digest"] == digest


@pytest.mark.serve
def test_overload_returns_503_with_retry_after(tmp_path, monkeypatch):
    """A single-shard daemon with latency-injected store loads and a tiny
    per-digest queue must shed excess concurrent load as 503."""
    monkeypatch.setenv("REPRO_FAULTS", "latency:ms=400")
    daemon = ServeDaemon(
        tmp_path / "store", workers=1, queue_limit=2, retry_after_s=3.0
    )
    daemon.start()
    try:
        with ServeClient(daemon.url) as setup:
            digest = setup.register(gen.grid_2d(6, 6))["digest"]
        outcomes: list[object] = []

        def fire() -> None:
            with ServeClient(daemon.url) as client:
                try:
                    client.solve(
                        digest=digest, radius=1, algorithm="seq.greedy",
                        seed=7,
                    )
                    outcomes.append("ok")
                except ServeError as exc:
                    outcomes.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        shed = [o for o in outcomes if isinstance(o, ServeError)]
        assert len(outcomes) == 6
        assert shed, "expected at least one overload rejection"
        for exc in shed:
            assert exc.status == 503
            assert exc.error["type"] == "Overloaded"
            # Retry-After is an RFC-7231 integer-second header.
            assert exc.retry_after_s == pytest.approx(3.0)
        with ServeClient(daemon.url) as client:
            st = client.status()
        assert st["requests"]["overloaded"] == len(shed)
    finally:
        daemon.shutdown()


@pytest.mark.serve
def test_worker_crash_respawns_and_result_is_unchanged(tmp_path, monkeypatch):
    """The per-shard supervisor keeps PR 9's contract at the service
    boundary: a killed worker respawns and the retried solve matches."""
    g = gen.grid_2d(6, 6)
    daemon = ServeDaemon(tmp_path / "store", workers=1)
    daemon.start()
    try:
        with ServeClient(daemon.url) as client:
            digest = client.register(g)["digest"]
            monkeypatch.setenv(
                "REPRO_FAULTS", f"kill:digest={digest[:6]},attempts=1"
            )
            # The env reaches workers spawned after this point; force a
            # respawn path by restarting the daemon with the plan set.
        daemon.shutdown()
        daemon = ServeDaemon(tmp_path / "store", workers=1)
        daemon.start()
        with ServeClient(daemon.url) as client:
            served = client.solve(
                digest=digest, radius=1, algorithm="seq.wreach", seed=7,
                raw=True,
            )
            st = client.status()
        assert _comparable(served) == _expected(g, 1, "seq.wreach")
        supervisor = st["shards"]["shards"][0]["supervisor"]
        assert supervisor["respawns"] >= 1
        assert sum(supervisor["retries"].values()) >= 1
    finally:
        daemon.shutdown()


# ----------------------------------------------------------------------
# Process-level drain
# ----------------------------------------------------------------------


@pytest.mark.serve
def test_sigterm_drains_in_flight_work_and_leaves_no_torn_files(tmp_path):
    store = tmp_path / "store"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--store", str(store),
         "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=REPO_ROOT,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("listening on http://"), line
        url = line.removeprefix("listening on ").strip()

        g = gen.grid_2d(8, 8)
        results: list[dict] = []
        with ServeClient(url) as client:
            digest = client.register(g)["digest"]

        def slow_solve() -> None:
            with ServeClient(url) as inner:
                results.append(
                    inner.solve(
                        digest=digest, radius=2, algorithm="seq.wreach",
                        seed=7, certify=True, raw=True,
                    )
                )

        t = threading.Thread(target=slow_solve)
        t.start()
        time.sleep(0.05)  # let the request reach the daemon
        proc.send_signal(signal.SIGTERM)
        t.join(timeout=120)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == 0, err
    assert "drained" in out
    # The in-flight request finished (drain waits for active handlers).
    assert results and _comparable(results[0]) == _expected(
        g, 2, "seq.wreach", certify=True
    )
    # No torn store files: drain sweeps the tmp staging area.
    leftovers = [p for p in store.rglob("*.tmp*") if p.is_file()]
    assert leftovers == []
    # A fresh daemon over the same store serves the warmed digest.
    daemon = ServeDaemon(store)
    daemon.start()
    try:
        with ServeClient(daemon.url) as client:
            again = client.solve(
                digest=digest, radius=2, algorithm="seq.wreach", seed=7,
                certify=True, raw=True,
            )
        assert _comparable(again) == _comparable(results[0])
    finally:
        daemon.shutdown()


@pytest.mark.serve
def test_draining_daemon_rejects_new_work(tmp_path):
    daemon = ServeDaemon(tmp_path / "store")
    daemon.start()
    url = daemon.url
    daemon.shutdown()
    with ServeClient(url) as client:
        with pytest.raises((ServeError, OSError)) as excinfo:
            client.status()
        if isinstance(excinfo.value, ServeError):
            assert excinfo.value.status == 503


# ----------------------------------------------------------------------
# Unit layers: routing hash and latency tracker
# ----------------------------------------------------------------------


def test_shard_of_is_stable_and_in_range():
    digest = "3fb2a90c" + "0" * 24
    assert shard_of(digest, 4) == int("3fb2a90c", 16) % 4
    for shards in (1, 2, 3, 8):
        assert all(
            0 <= shard_of(f"{i:032x}", shards) < shards for i in range(64)
        )
    # Non-hex identifiers (probe keys) still route deterministically.
    assert shard_of("__probe_1__", 3) == shard_of("__probe_1__", 3)


def test_shard_of_spreads_distinct_digests():
    hits = {shard_of(f"{i * 2654435761 % 2**32:08x}", 4) for i in range(32)}
    assert hits == {0, 1, 2, 3}


def test_percentile_nearest_rank():
    samples = [10.0, 20.0, 30.0, 40.0]
    assert percentile(samples, 0.50) == 20.0
    assert percentile(samples, 0.95) == 40.0
    assert percentile([7.0], 0.99) == 7.0
    # Unsorted input must give the same answer (sorted internally).
    assert percentile([40.0, 10.0, 30.0, 20.0], 0.50) == 20.0
    assert percentile([40.0, 10.0, 30.0, 20.0], 0.95) == 40.0


def test_latency_tracker_snapshot_counts_and_percentiles():
    tracker = LatencyTracker(window=8)
    for ms in (1, 2, 3, 4, 5):
        tracker.observe("seq.greedy", ms / 1e3)
    tracker.observe("seq.exact", 0.5, ok=False)
    tracker.count_overload()
    snap = tracker.snapshot()
    assert snap["requests"]["total"] == 6
    assert snap["requests"]["failed"] == 1
    assert snap["requests"]["overloaded"] == 1
    assert snap["requests"]["by_solver"]["seq.greedy"]["total"] == 5
    greedy = snap["latency_ms"]["seq.greedy"]
    assert greedy["count"] == 5
    assert greedy["p50_ms"] == pytest.approx(3.0)
    assert greedy["p99_ms"] == pytest.approx(5.0)
