"""Barenboim-Elkin H-partition protocol."""

import numpy as np
import pytest

from repro.distributed.beh_partition import run_h_partition
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.expansion import degeneracy


def _check_h_partition_property(g, outs, threshold):
    """Every vertex has <= threshold neighbors at its own or higher level."""
    levels = [o.level for o in outs]
    for v in range(g.n):
        higher = sum(1 for u in g.neighbors(v) if levels[int(u)] >= levels[v])
        assert higher <= threshold, (v, levels[v], higher)


@pytest.mark.parametrize(
    "g",
    [gen.grid_2d(6, 6), gen.balanced_tree(3, 3), gen.k_tree(40, 3, seed=1)],
    ids=["grid", "tree", "ktree3"],
)
def test_partition_property(g):
    thr = 2 * max(1, degeneracy(g))
    outs, res = run_h_partition(g, thr)
    assert all(o.level >= 1 for o in outs)
    _check_h_partition_property(g, outs, thr)


def test_neighbor_levels_learned():
    g = gen.grid_2d(5, 5)
    outs, _ = run_h_partition(g, 4)
    for v in range(g.n):
        assert set(outs[v].neighbor_levels) == set(int(u) for u in g.neighbors(v))
        for u, lvl in outs[v].neighbor_levels.items():
            assert lvl == outs[u].level


def test_single_level_when_threshold_large():
    g = gen.grid_2d(4, 4)
    outs, res = run_h_partition(g, 100)
    assert all(o.level == 1 for o in outs)


def test_levels_logarithmic_for_good_threshold():
    g = gen.k_tree(200, 2, seed=0)
    thr = 2 * degeneracy(g)
    outs, res = run_h_partition(g, thr)
    max_level = max(o.level for o in outs)
    # O(log n) levels; generous constant.
    assert max_level <= 4 * int(np.ceil(np.log2(g.n)))


def test_rounds_scale_with_levels():
    g = gen.k_tree(100, 2, seed=0)
    outs, res = run_h_partition(g, 2 * degeneracy(g))
    max_level = max(o.level for o in outs)
    # 2 rounds per phase plus start/finish slack.
    assert res.rounds <= 2 * max_level + 3


def test_too_small_threshold_stalls():
    g = gen.cycle_graph(8)  # every vertex has degree 2
    with pytest.raises(SimulationError):
        run_h_partition(g, 1, max_rounds=60)


def test_threshold_validation():
    with pytest.raises(SimulationError):
        run_h_partition(gen.path_graph(3), 0)


def test_messages_are_single_word():
    g = gen.grid_2d(5, 5)
    _, res = run_h_partition(g, 4)
    # "active" (1 word-ish) and ("joined", level) (2-3 words).
    assert res.max_payload_words <= 4


def test_deterministic():
    g = gen.k_tree(50, 2, seed=2)
    o1, r1 = run_h_partition(g, 4)
    o2, r2 = run_h_partition(g, 4)
    assert [o.level for o in o1] == [o.level for o in o2]
    assert r1.rounds == r2.rounds
