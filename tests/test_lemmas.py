"""Direct property tests of the paper's standalone lemmas."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.domset import domset_sequential
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.components import is_connected
from repro.graphs.traversal import bfs_distances, shortest_path
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wreach_sets


@st.composite
def connected_graph(draw, max_n=14):
    n = draw(st.integers(min_value=2, max_value=max_n))
    # Random spanning tree plus extra edges: always connected.
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    edges = [(draw(st.integers(min_value=0, max_value=v - 1)), v) for v in range(1, n)]
    edges += [(u, v) for u, v in extra if u != v]
    return from_edges(n, edges)


@given(connected_graph(), st.integers(min_value=1, max_value=2))
@settings(max_examples=40, deadline=None)
def test_lemma11(g, radius):
    """Lemma 11: D + paths between pairs at distance <= 2r+1 is connected."""
    order, _ = degeneracy_order(g)
    d = list(domset_sequential(g, order, radius).dominators)
    # Connect exactly the pairs the lemma asks for.
    vertices = set(d)
    for i, u in enumerate(d):
        dist = bfs_distances(g, u, max_dist=2 * radius + 1)
        for v in d[i + 1 :]:
            if dist[v] != -1:
                path = shortest_path(g, u, v)
                assert path is not None
                vertices.update(path)
    sub, _ = g.subgraph(sorted(vertices))
    assert is_connected(sub)


@given(connected_graph(), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_lemma12(g, r):
    """Lemma 12: the L-min of a short u-v path is weakly r-reachable from both."""
    rng = np.random.default_rng(0)
    order = LinearOrder.from_sequence(rng.permutation(g.n))
    wr = wreach_sets(g, order, r)
    for u in range(min(g.n, 6)):
        for v in range(u, g.n):
            path = shortest_path(g, u, v, max_dist=r)
            if path is None:
                continue
            w = order.min_of(path)
            assert w in wr[u], (u, v, w)
            assert w in wr[v], (u, v, w)


def test_lemma12_concrete():
    # Path 0-1-2 with order making 1 the least: 1 in WReach_2 of both ends.
    g = gen.path_graph(3)
    order = LinearOrder.from_sequence([1, 0, 2])
    wr = wreach_sets(g, order, 2)
    assert 1 in wr[0] and 1 in wr[2]


@given(connected_graph(max_n=12), st.integers(min_value=1, max_value=2))
@settings(max_examples=30, deadline=None)
def test_lemma14_15_on_random_graphs(g, radius):
    """B(D) is a partition into radius-<=r connected classes whose quotient
    is a connected minor (Lemmas 14 + 15)."""
    from repro.core.connect import lex_ball_partition, minor_of_domset
    from repro.graphs.expansion import is_valid_minor_model

    order, _ = degeneracy_order(g)
    d = domset_sequential(g, order, radius).dominators
    owner, labels = lex_ball_partition(g, d, radius)
    # Partition: every vertex owned, owners are dominators.
    assert set(int(o) for o in owner) <= set(d)
    # Valid depth-r minor model.
    relabel = {v: i for i, v in enumerate(sorted(set(int(o) for o in owner)))}
    class_labels = np.asarray([relabel[int(o)] for o in owner])
    assert is_valid_minor_model(g, class_labels, radius=radius)
    # Quotient connected.
    h_edges = minor_of_domset(g, d, radius)
    idx = {v: i for i, v in enumerate(d)}
    quotient = from_edges(len(d), [(idx[a], idx[b]) for a, b in h_edges])
    assert is_connected(quotient)


@given(
    st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**48), max_value=2**48),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=8),
        ),
        lambda inner: st.tuples(inner, inner) | st.tuples(inner),
        max_leaves=12,
    )
)
@settings(max_examples=120, deadline=None)
def test_pipelining_codec_roundtrip(payload):
    """The pipelining wire codec is lossless on arbitrary nested payloads."""
    from repro.distributed.pipelining import decode_payload, encode_payload

    assert decode_payload(encode_payload(payload)) == payload
