"""ArtifactStore: bit-identical persistence + warm cross-process starts."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.api import ArtifactStore, PrecomputeCache, graph_digest, order_digest
from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import RankedAdjacency, wreach_csr

#: The parity instances: scalar-kernel sized, batch-kernel sized, planar.
PARITY = [
    ("grid", lambda: gen.grid_2d(7, 7)),
    ("ktree", lambda: gen.k_tree(600, 3, seed=5)),
    ("delaunay", lambda: rm.delaunay_graph(620, seed=3)[0]),
]


@pytest.fixture(params=PARITY, ids=[name for name, _ in PARITY])
def instance(request):
    return request.param[1]()


def test_graph_roundtrip_is_digest_verified(tmp_path, instance):
    store = ArtifactStore(tmp_path)
    digest = store.put_graph(instance)
    g2 = store.get_graph(digest)
    assert g2 == instance
    assert graph_digest(g2) == digest
    assert store.get_graph("0" * 32) is None  # unknown digest


def test_artifact_roundtrip_bit_identical(tmp_path, instance):
    """Acceptance: order sequences, WReachCSR (indptr, members), and wcol
    loaded from a store match freshly computed ones exactly."""
    g = instance
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    order, _ = degeneracy_order(g)
    od = order_digest(order)

    store.put_order(gd, "degeneracy", 0, order)
    loaded_order = store.get_order(gd, "degeneracy", 0, n=g.n)
    assert loaded_order.rank.tolist() == order.rank.tolist()
    assert loaded_order.by_rank.tolist() == order.by_rank.tolist()

    adj = RankedAdjacency(g, order)
    store.put_rank_adj(gd, od, adj)
    loaded_adj = store.get_rank_adj(gd, od, g, order)
    assert loaded_adj.nbrs.tolist() == adj.nbrs.tolist()
    assert loaded_adj.nbr_ranks.tolist() == adj.nbr_ranks.tolist()

    for reach in (1, 2, 4):
        csr = wreach_csr(g, order, reach, adj=adj)
        store.put_wreach(gd, od, reach, csr)
        loaded = store.get_wreach(gd, od, reach, g, order)
        assert loaded.indptr.tolist() == csr.indptr.tolist()
        assert loaded.members.tolist() == csr.members.tolist()
        assert loaded.reach == reach
        store.put_wcol(gd, od, reach, csr.wcol())
        assert store.get_wcol(gd, od, reach) == csr.wcol()


def test_dist_order_roundtrip(tmp_path):
    from repro.distributed.nd_order import distributed_h_partition_order

    g = gen.grid_2d(6, 6)
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    oc = distributed_h_partition_order(g)
    store.put_dist_order(gd, "h_partition", 0, None, oc)
    loaded = store.get_dist_order(gd, "h_partition", 0, None, n=g.n)
    assert loaded.order.rank.tolist() == oc.order.rank.tolist()
    assert loaded.class_ids.tolist() == oc.class_ids.tolist()
    assert (loaded.rounds, loaded.normalized_rounds) == (
        oc.rounds, oc.normalized_rounds
    )
    assert (loaded.max_payload_words, loaded.total_words) == (
        oc.max_payload_words, oc.total_words
    )
    assert loaded.mode == "h_partition"


def test_corrupt_and_foreign_files_are_misses(tmp_path):
    g = gen.grid_2d(5, 5)
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    # Truncate the stored npz: load must degrade to a miss, not raise.
    path = store._graph_path(gd)
    path.write_bytes(path.read_bytes()[:20])
    assert store.get_graph(gd) is None
    assert store.get_order(gd, "degeneracy", 0) is None  # absent file
    # A graph stored under a wrong digest is rejected by verification.
    other = gen.grid_2d(4, 4)
    store._save(store._graph_path("deadbeef"), indptr=other.indptr,
                indices=other.indices)
    assert store.get_graph("deadbeef") is None


def test_malformed_entries_degrade_to_misses_everywhere(tmp_path):
    """Loadable-but-malformed npz files miss instead of crashing."""
    g = gen.grid_2d(5, 5)
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    order, _ = degeneracy_order(g)
    od = order_digest(order)
    # Empty indptr: graph_meta must not IndexError.
    store._save(store._graph_path("bad"), indptr=np.empty(0, dtype=np.int64),
                indices=np.empty(0, dtype=np.int32))
    assert store.graph_meta("bad") is None
    assert store.graph_meta(gd) == (g.n, g.m)
    # Multi-element wcol value: miss, not TypeError.
    store._save(store._wcol_path(gd, od, 2), value=np.arange(3))
    assert store.get_wcol(gd, od, 2) is None
    # WReach arrays whose offsets disagree with the member count: miss.
    store._save(store._wreach_path(gd, od, 2),
                indptr=np.zeros(g.n + 1, dtype=np.int64),
                members=np.arange(5, dtype=np.int64))
    assert store.get_wreach(gd, od, 2, g, order) is None


def test_two_tier_cache_write_through_and_read_through(tmp_path, instance):
    g = instance
    store = ArtifactStore(tmp_path)
    cold = PrecomputeCache(store=store)
    order = cold.order(g, "degeneracy", 2)
    csr = cold.wreach_csr(g, order, 4)
    wcol = cold.wcol(g, order, 4)
    st = cold.stats()
    assert st["order"]["computed"] == 1 and st["order"]["store_hits"] == 0

    # A fresh cache over the same store: everything loads, nothing runs.
    warm = PrecomputeCache(store=store)
    order2 = warm.order(g, "degeneracy", 2)
    csr2 = warm.wreach_csr(g, order2, 4)
    assert warm.wcol(g, order2, 4) == wcol
    assert order2.rank.tolist() == order.rank.tolist()
    assert csr2.indptr.tolist() == csr.indptr.tolist()
    assert csr2.members.tolist() == csr.members.tolist()
    st = warm.stats()
    for category in ("order", "wreach_csr", "wcol"):
        assert st[category]["computed"] == 0, (category, st)
        assert st[category]["store_hits"] == 1, (category, st)


def test_warm_second_process_recomputes_nothing(tmp_path):
    """Acceptance: a warm second *process* serves seq.wreach with zero
    wreach_csr recomputes, asserted via PrecomputeCache.stats()."""
    from repro.api.workspace import Workspace
    from repro.graphs.io import write_edge_list

    g = gen.k_tree(550, 3, seed=9)
    ws = Workspace(store=tmp_path / "store")
    handle = ws.add(g)
    ws.warm(handle, radius=2)
    write_edge_list(g, tmp_path / "g.edges")

    script = """
import json, sys
from repro.api.workspace import Workspace
from repro.graphs.io import read_edge_list

store, path = sys.argv[1], sys.argv[2]
g = read_edge_list(path)
ws = Workspace(store=store)
res = ws.solve(g, 2, "seq.wreach", certify=True)
res_min = ws.solve(g, 2, "seq.wreach-min")
print(json.dumps({
    "size": res.size,
    "size_min": res_min.size,
    "c": res.certificate.certified_c,
    "stats": ws.cache.stats(),
}))
"""
    import pathlib

    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path / "store"),
         str(tmp_path / "g.edges")],
        capture_output=True, text=True, env=env, check=True,
    )
    payload = json.loads(out.stdout)
    stats = payload["stats"]
    assert stats["wreach_csr"]["computed"] == 0, stats
    assert stats["order"]["computed"] == 0, stats
    assert stats["rank_adj"]["computed"] == 0, stats
    assert stats["wcol"]["computed"] == 0, stats
    # And the served results match an in-process fresh computation.
    fresh = PrecomputeCache()
    from repro.api import solve

    res = solve(g, 2, "seq.wreach", certify=True, cache=fresh)
    assert payload["size"] == res.size
    assert payload["c"] == res.certificate.certified_c


def test_concurrent_put_is_atomic(tmp_path):
    """Interleaved writers of the same artifact never corrupt it."""
    g = gen.grid_2d(6, 6)
    order, _ = degeneracy_order(g)
    store_a = ArtifactStore(tmp_path)
    store_b = ArtifactStore(tmp_path)
    gd = graph_digest(g)
    store_a.put_order(gd, "degeneracy", 0, order)
    store_b.put_order(gd, "degeneracy", 0, order)  # idempotent overwrite
    loaded = store_a.get_order(gd, "degeneracy", 0, n=g.n)
    assert loaded.rank.tolist() == order.rank.tolist()


def test_describe_reports_contents(tmp_path):
    g = gen.grid_2d(6, 6)
    store = ArtifactStore(tmp_path)
    cache = PrecomputeCache(store=store)
    store.put_graph(g)
    order = cache.order(g, "degeneracy", 1)
    cache.wreach_csr(g, order, 2)
    info = store.describe()
    assert len(info["graphs"]) == 1
    assert info["graphs"][0]["n"] == g.n and info["graphs"][0]["m"] == g.m
    assert info["categories"]["orders"]["artifacts"] == 1
    assert info["categories"]["wreach"]["artifacts"] == 1
    assert info["total_bytes"] > 0


def test_wreach_served_from_store_matches_kernel(tmp_path, instance):
    """The cached-from-disk CSR feeds the consumers identically."""
    from repro.core.domset import domset_by_wreach

    g = instance
    store = ArtifactStore(tmp_path)
    cold = PrecomputeCache(store=store)
    order = cold.order(g, "degeneracy", 1)
    ds_cold = domset_by_wreach(g, order, 1, csr=cold.wreach_csr(g, order, 1))

    warm = PrecomputeCache(store=store)
    order_w = warm.order(g, "degeneracy", 1)
    ds_warm = domset_by_wreach(g, order_w, 1, csr=warm.wreach_csr(g, order_w, 1))
    assert ds_warm.dominators == ds_cold.dominators
    assert np.array_equal(ds_warm.dominator_of, ds_cold.dominator_of)
