"""LOCAL engine: oracle mode == message-passing mode."""

import pytest

from repro.distributed.local_engine import BallInfo, gather_balls, run_local_algorithm
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph


@pytest.mark.parametrize("k", [0, 1, 2, 3])
def test_modes_agree(k):
    graphs = [
        gen.grid_2d(4, 5),
        gen.cycle_graph(9),
        gen.balanced_tree(2, 3),
        from_edges(6, [(0, 1), (2, 3), (3, 4)]),  # disconnected
    ]
    for g in graphs:
        oracle, _ = gather_balls(g, k, mode="oracle")
        msgs, _ = gather_balls(g, k, mode="messages")
        assert oracle == msgs, (g, k)


def test_modes_agree_with_data():
    g = gen.grid_2d(4, 4)
    data = {v: ("flag", v % 3 == 0) for v in range(g.n)}
    o, _ = gather_balls(g, 2, node_data=data, mode="oracle")
    m, _ = gather_balls(g, 2, node_data=data, mode="messages")
    assert o == m
    # Data of everything in the ball is present.
    for ball in o:
        assert set(ball.data) == set(ball.vertices)


def test_ball_contents_radius_one():
    g = gen.star_graph(5)
    balls, rounds = gather_balls(g, 1)
    assert rounds == 1
    center_ball = balls[0]
    assert center_ball.vertices == (0, 1, 2, 3, 4)
    leaf_ball = balls[1]
    assert leaf_ball.vertices == (0, 1)
    assert leaf_ball.edges == ((0, 1),)


def test_ball_edges_are_induced():
    g = gen.cycle_graph(6)
    balls, _ = gather_balls(g, 2)
    b = balls[0]  # N_2[0] = {4, 5, 0, 1, 2}
    assert b.vertices == (0, 1, 2, 4, 5)
    # Edge (2,3) and (3,4) absent: 3 not in the ball.
    assert (2, 3) not in b.edges and (3, 4) not in b.edges
    assert (4, 5) in b.edges


def test_ball_graph_roundtrip():
    g = gen.grid_2d(3, 3)
    balls, _ = gather_balls(g, 1)
    bg, local = balls[4].graph()  # center vertex
    assert bg.n == 5
    assert bg.degree(local[4]) == 4


def test_radius_zero_ball():
    g = gen.path_graph(3)
    balls, rounds = gather_balls(g, 0)
    assert rounds == 0
    assert balls[1].vertices == (1,)
    assert balls[1].edges == ()


def test_negative_radius_rejected():
    with pytest.raises(SimulationError):
        gather_balls(gen.path_graph(3), -1)


def test_unknown_mode_rejected():
    with pytest.raises(SimulationError):
        gather_balls(gen.path_graph(3), 1, mode="quantum")


def test_run_local_algorithm_outputs():
    g = gen.grid_2d(3, 3)

    def count_ball(ball: BallInfo) -> int:
        return len(ball.vertices)

    outs, rounds = run_local_algorithm(g, 1, count_ball)
    assert rounds == 1
    assert outs[4] == 5  # center of 3x3 grid
    assert outs[0] == 3  # corner


def test_larger_graph_modes_agree():
    g, _ = delaunay_graph(40, seed=8)
    o, _ = gather_balls(g, 3, mode="oracle")
    m, _ = gather_balls(g, 3, mode="messages")
    assert o == m
