"""Algorithm 4 (WReachDist) — distributed == sequential weak reachability."""

import numpy as np
import pytest

from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.wreach_bc import run_wreach_bc
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


def _class_ids_for(order: LinearOrder) -> np.ndarray:
    """Encode an arbitrary order as class ids (rank works directly)."""
    return np.asarray(order.rank, dtype=np.int64)


@pytest.mark.parametrize("horizon", [0, 1, 2, 4])
def test_distributed_equals_sequential_sets(small_graph, horizon):
    """The central equivalence: WReachDist learns exactly WReach_h."""
    g = small_graph
    rng = np.random.default_rng(7)
    order = LinearOrder.from_sequence(rng.permutation(g.n))
    outs, _ = run_wreach_bc(g, _class_ids_for(order), horizon)
    seq = wreach_sets(g, order, horizon)
    for v in range(g.n):
        assert set(outs[v].wreach) == set(seq[v]), (v, horizon)


def test_distributed_equals_sequential_on_h_partition_order(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    outs, _ = run_wreach_bc(g, oc.class_ids, 4)
    seq = wreach_sets(g, oc.order, 4)
    for v in range(g.n):
        assert set(outs[v].wreach) == set(seq[v])


def test_paths_are_valid_witnesses(small_graph):
    g = small_graph
    order = LinearOrder.identity(g.n)
    horizon = 3
    outs, _ = run_wreach_bc(g, _class_ids_for(order), horizon)
    for v in range(g.n):
        out = outs[v]
        for u, path in out.paths.items():
            assert path[0] == u and path[-1] == v
            assert len(path) - 1 <= horizon
            for a, b in zip(path, path[1:], strict=False):
                assert g.has_edge(a, b)
            # u is the L-least on the path.
            assert all(order.less(u, x) for x in path[1:])


def test_paths_are_shortest_restricted(small_graph):
    """Stored path length == restricted-BFS distance (Lemma 7's shortest-path claim)."""
    from repro.orders.wreach import wreach_sets_with_paths

    g = small_graph
    rng = np.random.default_rng(3)
    order = LinearOrder.from_sequence(rng.permutation(g.n))
    horizon = 4
    outs, _ = run_wreach_bc(g, _class_ids_for(order), horizon)
    _, seq_paths = wreach_sets_with_paths(g, order, horizon)
    for v in range(g.n):
        for u, path in outs[v].paths.items():
            assert len(path) == len(seq_paths[v][u])


def test_rounds_equal_horizon(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    for horizon in (1, 2, 4):
        _, res = run_wreach_bc(g, oc.class_ids, horizon)
        assert res.rounds == horizon


def test_horizon_zero_no_messages():
    g = gen.grid_2d(3, 3)
    outs, res = run_wreach_bc(g, np.zeros(9, dtype=np.int64), 0)
    assert res.rounds == 0
    assert all(outs[v].wreach == (v,) for v in range(9))


def test_message_size_bounded_by_c(medium_graph):
    """Lemma 7's congestion: payloads hold <= c paths of <= h+1 sids."""
    g = medium_graph
    oc = distributed_h_partition_order(g)
    horizon = 4
    _, res = run_wreach_bc(g, oc.class_ids, horizon)
    c = wcol_of_order(g, oc.order, horizon)
    # Each sid = 2 words; + tag overhead per message.
    per_path = 2 * (horizon + 1)
    assert res.max_payload_words <= c * per_path + 2


def test_wreach_within_filter():
    g = gen.path_graph(6)
    order = LinearOrder.identity(6)
    outs, _ = run_wreach_bc(g, _class_ids_for(order), 4)
    out = outs[5]
    w2 = set(out.wreach_within(2))
    seq = wreach_sets(g, order, 2)
    assert w2 == set(seq[5])


def test_deterministic(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    o1, r1 = run_wreach_bc(g, oc.class_ids, 3)
    o2, r2 = run_wreach_bc(g, oc.class_ids, 3)
    assert all(o1[v].paths == o2[v].paths for v in range(g.n))
    assert r1.total_words == r2.total_words


def test_delaunay_equivalence():
    g, _ = delaunay_graph(60, seed=5)
    oc = distributed_h_partition_order(g)
    outs, _ = run_wreach_bc(g, oc.class_ids, 3)
    seq = wreach_sets(g, oc.order, 3)
    for v in range(g.n):
        assert set(outs[v].wreach) == set(seq[v])
