"""Sequential connectivity constructions (Corollary 13, Lemmas 14-16)."""

import numpy as np
import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.core.connect import (
    canonical_lex_path,
    connect_via_minor,
    connect_via_wreach,
    lex_ball_partition,
    minor_of_domset,
    steiner_connect_baseline,
)
from repro.core.domset import domset_sequential
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.components import is_connected
from repro.graphs.traversal import bfs_distances, multi_source_distances
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import wcol_of_order


def _connected_zoo():
    return [
        gen.grid_2d(5, 6),
        gen.cycle_graph(12),
        gen.balanced_tree(2, 4),
        gen.triangular_grid(4, 5),
        gen.k_tree(18, 2, seed=3),
    ]


@pytest.mark.parametrize("radius", [1, 2])
def test_connect_via_wreach_valid(radius):
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = connect_via_wreach(g, order, ds.dominators, radius)
        assert set(ds.dominators) <= set(res.vertices)
        assert is_connected_distance_r_dominating_set(g, res.vertices, radius)


@pytest.mark.parametrize("radius", [1, 2])
def test_connect_via_wreach_size_bound(radius):
    """Theorem 10 size: |D'| <= c' * (2r + 2) * |D|."""
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = connect_via_wreach(g, order, ds.dominators, radius)
        c_prime = wcol_of_order(g, order, 2 * radius + 1)
        assert res.size <= c_prime * (2 * radius + 2) * ds.size


def test_connect_via_wreach_empty_rejected():
    g = gen.path_graph(3)
    order, _ = degeneracy_order(g)
    with pytest.raises(GraphError):
        connect_via_wreach(g, order, [], 1)


@pytest.mark.parametrize("radius", [1, 2])
def test_lex_partition_is_partition(radius):
    """Lemma 14: B(D) partitions V and each B(v) has radius <= r."""
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        owner, labels = lex_ball_partition(g, ds.dominators, radius)
        assert set(np.unique(owner)) <= set(ds.dominators)
        for v in ds.dominators:
            members = np.flatnonzero(owner == v)
            assert v in members
            sub, mapping = g.subgraph(members)
            assert is_connected(sub)
            # Radius <= r from the dominator inside its own class.
            local_v = int(np.searchsorted(mapping, v))
            dist = bfs_distances(sub, local_v)
            assert dist.max() <= radius


def test_lex_partition_labels_are_paths():
    g = gen.grid_2d(4, 4)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    owner, labels = lex_ball_partition(g, ds.dominators, 1)
    for w in range(g.n):
        lab = labels[w]
        assert lab is not None
        assert lab[0] == owner[w] and lab[-1] == w
        for a, b in zip(lab, lab[1:], strict=False):
            assert g.has_edge(a, b)


def test_lex_partition_shortest():
    g = gen.grid_2d(4, 5)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 2)
    owner, labels = lex_ball_partition(g, ds.dominators, 2)
    dist = multi_source_distances(g, ds.dominators)
    for w in range(g.n):
        assert len(labels[w]) - 1 == dist[w]


def test_lex_partition_rejects_non_domset():
    g = gen.path_graph(10)
    with pytest.raises(GraphError):
        lex_ball_partition(g, [0], 1)  # vertex 9 is too far


def test_lex_partition_lenient_mode():
    g = gen.path_graph(10)
    owner, labels = lex_ball_partition(g, [0], None)
    assert (owner == 0).all()  # everything reachable, owner 0
    g2 = from_edges(4, [(0, 1), (2, 3)])
    owner2, labels2 = lex_ball_partition(g2, [0], None)
    assert owner2[0] == 0 and owner2[1] == 0
    assert owner2[2] == -1 and owner2[3] == -1


@pytest.mark.parametrize("radius", [1, 2])
def test_minor_is_connected(radius):
    """Lemma 15: contracting B(D) yields a connected minor."""
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        h_edges = minor_of_domset(g, ds.dominators, radius)
        # Build the minor as a graph on dominator indices.
        idx = {v: i for i, v in enumerate(ds.dominators)}
        mg = from_edges(len(ds.dominators), [(idx[a], idx[b]) for a, b in h_edges])
        if len(ds.dominators) > 1:
            assert is_connected(mg)


@pytest.mark.parametrize("radius", [1, 2])
def test_connect_via_minor_valid(radius):
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = connect_via_minor(g, ds.dominators, radius)
        assert is_connected_distance_r_dominating_set(g, res.vertices, radius)


@pytest.mark.parametrize("radius", [1, 2])
def test_connect_via_minor_size_bound(radius):
    """Lemma 16: |D'| <= |D| + (path internal vertices) per minor edge."""
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = connect_via_minor(g, ds.dominators, radius)
        h_edges = minor_of_domset(g, ds.dominators, radius)
        assert res.size <= ds.size + 2 * radius * len(h_edges)


def test_canonical_path_symmetric():
    g = gen.grid_2d(4, 4)
    p1 = canonical_lex_path(g, 0, 15, 10)
    p2 = canonical_lex_path(g, 15, 0, 10)
    assert p1 == p2
    assert p1 is not None
    assert p1[0] == 0 and p1[-1] == 15


def test_canonical_path_respects_max_len():
    g = gen.path_graph(10)
    assert canonical_lex_path(g, 0, 9, 5) is None
    assert canonical_lex_path(g, 0, 5, 5) == (0, 1, 2, 3, 4, 5)


def test_canonical_path_lexicographic_choice():
    # Two shortest 0->3 paths: 0-1-3 and 0-2-3; lex-least is 0-1-3.
    g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    assert canonical_lex_path(g, 0, 3, 3) == (0, 1, 3)


@pytest.mark.parametrize("radius", [1, 2])
def test_steiner_baseline_valid(radius):
    for g in _connected_zoo():
        order, _ = degeneracy_order(g)
        ds = domset_sequential(g, order, radius)
        res = steiner_connect_baseline(g, ds.dominators, radius)
        assert is_connected_distance_r_dominating_set(g, res.vertices, radius)


def test_steiner_rejects_multi_component_dominators():
    g = from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(GraphError):
        steiner_connect_baseline(g, [0, 2], 1)


def test_blowup_property():
    g = gen.grid_2d(5, 5)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    res = connect_via_minor(g, ds.dominators, 1)
    assert res.blowup == pytest.approx(res.size / ds.size)
