"""Exact solvers and LP bounds."""

import numpy as np
import pytest

from repro.core.exact import (
    brute_force_domset,
    coverage_matrix,
    exact_domset,
    lp_lower_bound,
)
from repro.analysis.validate import is_distance_r_dominating_set
from repro.errors import SolverError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges


def test_coverage_matrix_entries():
    g = gen.path_graph(4)
    a = coverage_matrix(g, 1).toarray()
    expected = np.array(
        [[1, 1, 0, 0], [1, 1, 1, 0], [0, 1, 1, 1], [0, 0, 1, 1]], dtype=np.int8
    )
    assert np.array_equal(a, expected)


def test_coverage_matrix_radius_zero_identity():
    g = gen.cycle_graph(5)
    a = coverage_matrix(g, 0).toarray()
    assert np.array_equal(a, np.eye(5, dtype=np.int8))


def test_known_optima():
    assert brute_force_domset(gen.star_graph(9), 1)[0] == 1
    assert brute_force_domset(gen.path_graph(9), 1)[0] == 3
    assert brute_force_domset(gen.path_graph(9), 2)[0] == 2
    assert brute_force_domset(gen.cycle_graph(9), 1)[0] == 3
    assert brute_force_domset(gen.complete_graph(6), 1)[0] == 1


def test_milp_matches_brute_force(small_graph):
    g = small_graph
    if g.n > 20:
        pytest.skip("brute force too slow")
    for radius in (1, 2):
        bf, bf_set = brute_force_domset(g, radius)
        ip, ip_set = exact_domset(g, radius)
        assert bf == ip
        assert is_distance_r_dominating_set(g, ip_set, radius)
        assert is_distance_r_dominating_set(g, bf_set, radius)


def test_lp_below_opt(small_graph):
    g = small_graph
    for radius in (1, 2):
        lp = lp_lower_bound(g, radius)
        opt, _ = exact_domset(g, radius)
        assert lp <= opt + 1e-6
        assert lp >= 0


def test_lp_exact_on_star():
    # Fractional and integral optimum coincide: 1 (the center).
    g = gen.star_graph(8)
    assert lp_lower_bound(g, 1) == pytest.approx(1.0, abs=1e-6)


def test_brute_force_limit():
    g = gen.grid_2d(5, 5)
    with pytest.raises(SolverError):
        brute_force_domset(g, 1)


def test_empty_graph():
    g = from_edges(0, [])
    assert exact_domset(g, 1) == (0, [])
    assert brute_force_domset(g, 1) == (0, [])
    assert lp_lower_bound(g, 1) == 0.0


def test_disconnected_optimum_adds_up():
    g = from_edges(6, [(0, 1), (2, 3), (4, 5)])
    assert exact_domset(g, 1)[0] == 3


def test_exact_domset_larger_radius_never_bigger(small_graph):
    g = small_graph
    s1, _ = exact_domset(g, 1)
    s2, _ = exact_domset(g, 2)
    assert s2 <= s1
