"""The unified pipeline entry point in the public API."""

from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
)
from repro.graphs import generators as gen
from repro.pipelines import congest_bc_pipeline, unified_bc_pipeline


def test_unified_pipeline_entry_point():
    g = gen.grid_2d(6, 6)
    res = unified_bc_pipeline(g, radius=1)
    assert is_distance_r_dominating_set(g, res.dominators, 1)
    phased = congest_bc_pipeline(g, radius=1)
    assert res.dominators == phased.domset.dominators


def test_unified_pipeline_connect():
    g = gen.grid_2d(5, 6)
    res = unified_bc_pipeline(g, radius=1, connect=True)
    assert is_connected_distance_r_dominating_set(g, res.connected_set, 1)
    assert set(res.dominators) <= set(res.connected_set)
