"""Bansal-Umboh LP rounding baseline."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.exact import exact_domset
from repro.core.lp_rounding import lp_rounding_domset
from repro.errors import SolverError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.expansion import degeneracy
from repro.graphs.random_models import delaunay_graph


@pytest.mark.parametrize("radius", [1, 2])
def test_output_dominates(small_graph, radius):
    res = lp_rounding_domset(small_graph, radius)
    assert is_distance_r_dominating_set(small_graph, res.dominators, radius)


def test_three_a_bound_on_small_instances():
    """|D| <= 3a * OPT with a = degeneracy (measured claim of [10])."""
    for g in (gen.grid_2d(4, 4), gen.cycle_graph(12), gen.star_graph(10),
              gen.balanced_tree(2, 3)):
        a = max(1, degeneracy(g))
        res = lp_rounding_domset(g, 1)
        opt, _ = exact_domset(g, 1)
        assert res.size <= 3 * a * opt + 1e-9


def test_lp_value_is_lower_bound():
    g, _ = delaunay_graph(80, seed=1)
    res = lp_rounding_domset(g, 1)
    assert res.lp_value <= res.size
    assert res.rounded + res.fixed_up >= res.size  # S and U may overlap... no:
    # S and U are disjoint by construction (U is undominated by S).
    assert res.rounded + res.fixed_up == res.size


def test_threshold_tracks_arboricity_advice():
    g = gen.grid_2d(5, 5)
    r1 = lp_rounding_domset(g, 1, arboricity=1)
    r3 = lp_rounding_domset(g, 1, arboricity=3)
    assert r1.threshold == pytest.approx(1 / 3)
    assert r3.threshold == pytest.approx(1 / 9)
    # A lower threshold admits more vertices into S.
    assert r3.rounded >= r1.rounded


def test_star_lp_is_integral():
    g = gen.star_graph(12)
    res = lp_rounding_domset(g, 1)
    assert res.lp_value == pytest.approx(1.0, abs=1e-6)
    assert 0 in res.dominators


def test_empty_graph():
    res = lp_rounding_domset(from_edges(0, []), 1)
    assert res.dominators == ()


def test_rejects_radius_zero():
    with pytest.raises(SolverError):
        lp_rounding_domset(gen.path_graph(3), 0)
