"""True bounded-bandwidth execution of CONGEST_BC protocols."""

import numpy as np
import pytest

from repro.distributed.beh_partition import HPartitionNode
from repro.distributed.mis import LubyMISNode, run_luby_mis
from repro.distributed.model import Model
from repro.distributed.network import Network
from repro.distributed.nd_order import distributed_h_partition_order
from repro.distributed.pipelining import (
    decode_payload,
    encode_payload,
    run_pipelined,
)
from repro.distributed.wreach_bc import WReachNode, run_wreach_bc
from repro.errors import ModelViolation
from repro.graphs import generators as gen


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
PAYLOADS = [
    None,
    True,
    False,
    0,
    -12345,
    2**40,
    3.14159,
    -0.0,
    "",
    "elect",
    "päths",  # non-ascii
    (),
    (1, 2, 3),
    ("paths", ((1, 2), (3, 4))),
    ((None, True), ("x", (2.5,)), ()),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=[repr(p)[:25] for p in PAYLOADS])
def test_codec_roundtrip(payload):
    assert decode_payload(encode_payload(payload)) == payload


def test_codec_rejects_unknown_types():
    with pytest.raises(ModelViolation):
        encode_payload(object())
    with pytest.raises(ModelViolation):
        encode_payload([1, 2])  # lists are not wire types; use tuples


def test_codec_rejects_trailing_garbage():
    tokens = encode_payload((1, 2)) + [0]
    with pytest.raises(ModelViolation):
        decode_payload(tokens)


# ---------------------------------------------------------------------------
# Pipelined execution == plain execution
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("words", [1, 3, 8])
def test_wreach_pipelined_equals_plain(words):
    g = gen.grid_2d(5, 5)
    oc = distributed_h_partition_order(g)
    horizon = 4
    plain, plain_res = run_wreach_bc(g, oc.class_ids, horizon)
    advice = {"class_ids": np.asarray(oc.class_ids, dtype=np.int64)}
    pipe_res = run_pipelined(
        g, lambda v: WReachNode(horizon), words_per_round=words, advice=advice
    )
    for v in range(g.n):
        assert pipe_res.outputs[v].wreach == plain[v].wreach
        assert pipe_res.outputs[v].paths == plain[v].paths
    # Strict bandwidth: no physical payload above the budget.
    assert pipe_res.max_payload_words <= words
    # More bandwidth -> no more rounds.
    assert pipe_res.rounds >= plain_res.rounds


def test_pipelined_rounds_decrease_with_bandwidth():
    g = gen.grid_2d(5, 5)
    oc = distributed_h_partition_order(g)
    advice = {"class_ids": np.asarray(oc.class_ids, dtype=np.int64)}
    rounds = [
        run_pipelined(g, lambda v: WReachNode(4), words_per_round=w, advice=advice).rounds
        for w in (1, 4, 16)
    ]
    assert rounds[0] > rounds[1] > rounds[2]


def test_h_partition_pipelined_equals_plain():
    g = gen.k_tree(40, 2, seed=1)
    plain = Network(
        g, Model.CONGEST_BC, lambda v: HPartitionNode(), advice={"threshold": 4}
    ).run()
    pipe = run_pipelined(
        g, lambda v: HPartitionNode(), words_per_round=2, advice={"threshold": 4}
    )
    for v in range(g.n):
        assert pipe.outputs[v].level == plain.outputs[v].level
        assert pipe.outputs[v].neighbor_levels == plain.outputs[v].neighbor_levels


def test_luby_pipelined_equals_plain():
    g = gen.grid_2d(5, 5)
    mis_plain, _ = run_luby_mis(g, seed=7)
    pipe = run_pipelined(g, lambda v: LubyMISNode(7), words_per_round=2)
    mis_pipe = sorted(v for v in range(g.n) if pipe.outputs[v])
    assert mis_pipe == mis_plain


def test_pipelined_node_rejects_p2p():
    from repro.distributed.node import NodeAlgorithm

    class P2P(NodeAlgorithm):
        def on_start(self, ctx):
            return {u: 1 for u in ctx.neighbors}

        def on_round(self, ctx, inbox):
            self.halted = True
            return None

    g = gen.path_graph(3)
    with pytest.raises(ModelViolation):
        run_pipelined(g, lambda v: P2P(), words_per_round=2)


def test_pipelined_isolated_vertices():
    from repro.graphs.build import from_edges

    g = from_edges(4, [(0, 1)])  # vertices 2, 3 isolated
    # Luby halts fast even for isolated nodes (they self-elect).
    pipe = run_pipelined(g, lambda v: LubyMISNode(0), words_per_round=1)
    mis = sorted(v for v in range(g.n) if pipe.outputs[v])
    plain, _ = run_luby_mis(g, seed=0)
    assert mis == plain
    assert {2, 3} <= set(mis)
