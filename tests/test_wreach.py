"""Weak reachability: definition checks against a brute-force oracle."""


import numpy as np
import pytest

from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import (
    restricted_bfs,
    wcol_of_order,
    wreach_sets,
    wreach_sets_with_paths,
    wreach_sizes,
)


def brute_force_wreach(g, order, radius):
    """Enumerate all simple paths of length <= radius (tiny graphs only)."""
    result = [set() for _ in range(g.n)]
    for v in range(g.n):
        result[v].add(v)
    # BFS over simple paths from each start.
    for v in range(g.n):
        stack = [(v, (v,))]
        while stack:
            cur, path = stack.pop()
            if len(path) - 1 < radius:
                for u in g.neighbors(cur):
                    u = int(u)
                    if u not in path:
                        new_path = path + (u,)
                        # u is weakly reachable from v if u is the minimum.
                        if all(order.less(u, x) for x in new_path[:-1]):
                            result[v].add(u)
                        stack.append((u, new_path))
    return result


@pytest.mark.parametrize("radius", [0, 1, 2, 3])
def test_wreach_matches_brute_force(radius):
    graphs = [
        gen.path_graph(7),
        gen.cycle_graph(6),
        gen.grid_2d(3, 3),
        gen.complete_graph(4),
        gen.star_graph(6),
    ]
    for g in graphs:
        for seed in (0, 1):
            rng = np.random.default_rng(seed)
            order = LinearOrder.from_sequence(rng.permutation(g.n))
            ours = wreach_sets(g, order, radius)
            oracle = brute_force_wreach(g, order, radius)
            for v in range(g.n):
                assert set(ours[v]) == oracle[v], (g, seed, radius, v)


def test_wreach_radius_zero_is_self():
    g = gen.grid_2d(3, 3)
    w = wreach_sets(g, LinearOrder.identity(9), 0)
    assert all(w[v] == [v] for v in range(9))


def test_wreach_identity_order_path():
    # Path 0-1-2-3 with identity order: WReach_1[v] = {v-1, v}.
    g = gen.path_graph(4)
    w = wreach_sets(g, LinearOrder.identity(4), 1)
    assert set(w[0]) == {0}
    assert set(w[1]) == {0, 1}
    assert set(w[3]) == {2, 3}


def test_wreach_contains_self_and_monotone_in_radius(small_graph):
    g = small_graph
    order = LinearOrder.identity(g.n)
    prev = None
    for r in (0, 1, 2, 3):
        w = wreach_sets(g, order, r)
        for v in range(g.n):
            assert v in w[v]
            if prev is not None:
                assert set(prev[v]) <= set(w[v])
        prev = w


def test_restricted_bfs_respects_order():
    g = gen.path_graph(5)
    order = LinearOrder.from_sequence([4, 3, 2, 1, 0])  # 4 least, 0 greatest
    # From root 2, only vertices L-greater than 2 may be traversed: 0, 1.
    out = restricted_bfs(g, order, 2, 4)
    assert set(out) == {2, 1, 0}


def test_wreach_sizes_consistent(small_graph):
    g = small_graph
    order = LinearOrder.identity(g.n)
    sizes = wreach_sizes(g, order, 2)
    sets = wreach_sets(g, order, 2)
    assert sizes.tolist() == [len(s) for s in sets]


def test_wcol_of_order_monotone_in_radius(small_graph):
    g = small_graph
    order = LinearOrder.identity(g.n)
    vals = [wcol_of_order(g, order, r) for r in range(4)]
    assert vals == sorted(vals)
    assert vals[0] == 1  # WReach_0 = {v}


def test_wcol_upper_bound_by_n(small_graph):
    g = small_graph
    order = LinearOrder.identity(g.n)
    assert wcol_of_order(g, order, g.n) <= g.n


def test_wreach_paths_are_valid_witnesses(small_graph):
    g = small_graph
    rng = np.random.default_rng(3)
    order = LinearOrder.from_sequence(rng.permutation(g.n))
    radius = 3
    wreach, paths = wreach_sets_with_paths(g, order, radius)
    for v in range(g.n):
        assert set(paths[v].keys()) == set(wreach[v]) - {v}
        for u, path in paths[v].items():
            assert path[0] == v and path[-1] == u
            assert len(path) - 1 <= radius
            for a, b in zip(path, path[1:], strict=False):
                assert g.has_edge(a, b)
            # u is the L-minimum on the path.
            assert all(order.less(u, x) for x in path[:-1])


def test_wreach_paths_are_shortest_within_restriction(small_graph):
    """The stored path length equals the restricted BFS distance."""
    g = small_graph
    order = LinearOrder.identity(g.n)
    radius = 2
    wreach, paths = wreach_sets_with_paths(g, order, radius)
    for v in range(g.n):
        for u, path in paths[v].items():
            # No shorter path with all non-u vertices > u can exist:
            # recompute via brute force on this small graph.
            best = None
            stack = [(u, (u,))]
            while stack:
                cur, p = stack.pop()
                if cur == v and len(p) > 1:
                    if best is None or len(p) < best:
                        best = len(p)
                    continue
                if len(p) - 1 < radius:
                    for x in g.neighbors(cur):
                        x = int(x)
                        if x not in p and (order.less(u, x)):
                            stack.append((x, p + (x,)))
            assert best is not None
            assert len(path) == best


def test_wreach_order_size_mismatch():
    g = gen.path_graph(3)
    with pytest.raises(OrderError):
        wreach_sets(g, LinearOrder.identity(4), 1)


def test_wreach_sets_sorted_by_rank(small_graph):
    g = small_graph
    rng = np.random.default_rng(1)
    order = LinearOrder.from_sequence(rng.permutation(g.n))
    for v, members in enumerate(wreach_sets(g, order, 2)):
        ranks = [int(order.rank[u]) for u in members]
        assert ranks == sorted(ranks)
