"""Orientation-based approximate r-domset (``seq.rdomset-orient``).

Contract: the output is always a *valid* distance-r dominating set,
every vertex's elected dominator lies in its own WReach_r (the witness
that makes validity a one-line argument), the tier coincides exactly
with ``domset_by_wreach`` at r <= 1, and on the parity suite its size
stays within a small constant factor of the Theorem-5 tier — it trades
the wcol-bounded guarantee for O(r*m) flat passes, not for quality.
"""

import numpy as np
import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.api import solve
from repro.core.domset import domset_by_wreach
from repro.core.rdomset_orient import rdomset_orient
from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.orders.wreach import wreach_csr
from repro.pipelines import make_order

PARITY = [
    ("grid", lambda: gen.grid_2d(7, 7)),
    ("ktree", lambda: gen.k_tree(600, 3, seed=5)),
    ("delaunay", lambda: rm.delaunay_graph(620, seed=3)[0]),
]
RADII = (0, 1, 2, 3)


@pytest.fixture(params=PARITY, ids=[name for name, _ in PARITY])
def instance(request):
    return request.param[1]()


def test_valid_distance_r_domination(instance, small_graph):
    for g in (instance, small_graph):
        for r in RADII:
            order = make_order(g, max(r, 1), "degeneracy")
            res = rdomset_orient(g, order, r)
            assert is_distance_r_dominating_set(g, res.dominators, r)
            assert res.radius == r


def test_dominator_of_is_wreach_witness(instance):
    """Every elected dominator lies in its vertex's own WReach_r set.

    This is the structural property the O(r*m) validity argument rests
    on: the Jacobi propagation only ever follows rank-decreasing arcs,
    so best_r(v) is reachable from v by a monotone path of length <= r.
    """
    g = instance
    for r in (1, 2, 3):
        order = make_order(g, r, "degeneracy")
        res = rdomset_orient(g, order, r)
        csr = wreach_csr(g, order, r)
        for v in range(g.n):
            members = csr.members[csr.indptr[v] : csr.indptr[v + 1]]
            assert res.dominator_of[v] in members, (v, r)


def test_exact_parity_with_wreach_min_at_r_le_1(instance):
    """At r <= 1, WReach_r(v) = {v} + in-neighbors: the two tiers agree
    element-for-element, not just in size."""
    g = instance
    for r in (0, 1):
        order = make_order(g, max(r, 1), "degeneracy")
        ref = domset_by_wreach(g, order, r)
        got = rdomset_orient(g, order, r)
        assert got.dominators == ref.dominators
        assert np.array_equal(got.dominator_of, ref.dominator_of)


def test_quality_within_constant_of_wreach_min(instance):
    g = instance
    for r in (2, 3):
        order = make_order(g, r, "degeneracy")
        ref = len(domset_by_wreach(g, order, r).dominators)
        got = len(rdomset_orient(g, order, r).dominators)
        assert got <= max(ref * 1.2, ref + 2), (r, got, ref)


def test_solve_integration_with_certificate():
    g = rm.delaunay_graph(620, seed=3)[0]
    res = solve(g, 2, "seq.rdomset-orient", certify=True, validate=True)
    assert res.extras["valid"]
    assert res.certificate is not None
    assert res.certificate.certified_c >= 1
    assert res.dominators == tuple(sorted(set(res.dominators)))


def test_empty_and_singleton():
    import repro.graphs.build as build

    g0 = build.from_edges(0, [])
    assert rdomset_orient(g0, make_order(g0, 1, "degeneracy"), 2).dominators == ()
    g1 = build.from_edges(1, [])
    res = rdomset_orient(g1, make_order(g1, 1, "degeneracy"), 2)
    assert res.dominators == (0,)
    assert res.dominator_of.tolist() == [0]
