"""Random models: determinism, structure, bounded-expansion proxies."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import random_models as rm
from repro.graphs.build import to_networkx
from repro.graphs.components import is_connected


def test_random_tree_is_tree():
    g = rm.random_tree(40, seed=2)
    assert g.n == 40 and g.m == 39
    assert is_connected(g)


def test_random_tree_determinism():
    assert rm.random_tree(30, seed=5) == rm.random_tree(30, seed=5)
    assert rm.random_tree(30, seed=5) != rm.random_tree(30, seed=6)


def test_delaunay_planar_connected():
    g, pts = rm.delaunay_graph(60, seed=1)
    assert g.n == 60
    assert pts.shape == (60, 2)
    ok, _ = nx.check_planarity(to_networkx(g))
    assert ok
    assert is_connected(g)
    # Planar triangulations: m <= 3n - 6.
    assert g.m <= 3 * g.n - 6


def test_delaunay_determinism():
    g1, _ = rm.delaunay_graph(40, seed=3)
    g2, _ = rm.delaunay_graph(40, seed=3)
    assert g1 == g2


def test_random_geometric_density():
    g, pts = rm.random_geometric(400, seed=0)
    # Default radius keeps expected average degree around 2*pi; allow slack.
    assert 1.0 < g.average_degree() < 12.0


def test_random_geometric_radius_zero():
    g, _ = rm.random_geometric(20, radius=0.0, seed=0)
    assert g.m == 0


def test_chung_lu_degrees_track_weights():
    n = 300
    w = np.full(n, 4.0)
    g = rm.chung_lu(w, seed=0)
    avg = g.average_degree()
    # Expected degree ~ w = 4 for uniform weights.
    assert 2.0 < avg < 6.5


def test_chung_lu_zero_weights():
    g = rm.chung_lu(np.zeros(10), seed=0)
    assert g.m == 0


def test_chung_lu_rejects_negative():
    with pytest.raises(GraphError):
        rm.chung_lu(np.array([1.0, -2.0]))


def test_power_law_weights_range():
    w = rm.power_law_weights(100, exponent=2.5, seed=1)
    assert len(w) == 100
    assert (w >= 1.0).all()
    assert (w <= np.sqrt(100) + 1e-9).all()


def test_configuration_model_even_sum_required():
    with pytest.raises(GraphError):
        rm.configuration_model(np.array([3, 2, 2]))  # odd sum


def test_configuration_model_degrees_close():
    deg = np.full(100, 4)
    g = rm.configuration_model(deg, seed=0)
    # Simple-graph projection loses a few stubs to loops/multi-edges.
    assert g.m <= 200
    assert g.m >= 150
    assert g.max_degree() <= 4


def test_gnm_exact_edge_count():
    g = rm.gnm_random(50, 70, seed=0)
    assert g.n == 50 and g.m == 70


def test_gnm_bounds():
    with pytest.raises(GraphError):
        rm.gnm_random(4, 100)


def test_random_planar_subgraph_planar():
    g = rm.random_planar_subgraph(50, keep_fraction=0.6, seed=2)
    ok, _ = nx.check_planarity(to_networkx(g))
    assert ok
    with pytest.raises(GraphError):
        rm.random_planar_subgraph(10, keep_fraction=1.5)
