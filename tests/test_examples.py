"""Smoke checks for the example scripts.

Every example must at least compile; the cheap ones are executed
end-to-end (the heavyweight ones run in the benchmark/docs pipeline and
were validated by hand — their outputs are quoted in EXPERIMENTS.md).
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 5  # the deliverable requires at least three


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    compile(path.read_text(), str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_defines_main(path):
    text = path.read_text()
    assert "def main()" in text
    assert '__name__ == "__main__"' in text


def test_distributed_trace_runs(capsys):
    """The cheapest full example actually executes (6x6 grid)."""
    path = next(p for p in EXAMPLES if p.name == "distributed_trace.py")
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "matches the sequential elect-min-WReach set: OK" in out
