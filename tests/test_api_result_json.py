"""SolveResult JSON schema: to_json / from_json round-trips."""

import json

import numpy as np

from repro.api import SolveRequest, SolveResult, solve, solve_request
from repro.graphs import generators as gen


def _roundtrip(res: SolveResult) -> SolveResult:
    return SolveResult.from_json(res.to_json())


def test_certified_result_roundtrips():
    g = gen.grid_2d(6, 6)
    res = solve(g, 2, "seq.wreach", certify=True, prune=True, validate=True)
    clone = _roundtrip(res)
    assert clone.algorithm == res.algorithm
    assert clone.radius == res.radius
    assert clone.order_strategy == res.order_strategy
    assert clone.dominators == res.dominators  # back as a tuple of ints
    assert clone.certificate == res.certificate  # full Certificate equality
    assert clone.wall_time_s == res.wall_time_s
    assert clone.size == res.size
    # JSON-safe extras survive; raw never serializes.
    assert clone.extras["raw_size"] == res.extras["raw_size"]
    assert clone.extras["valid"] is True
    assert clone.raw is None


def test_distributed_result_roundtrips_accounting():
    g = gen.grid_2d(5, 5)
    res = solve(g, 1, "dist.congest", connect=True)
    clone = _roundtrip(res)
    assert clone.rounds == res.rounds
    assert clone.total_words == res.total_words
    assert clone.phase_rounds == dict(res.phase_rounds)
    assert clone.connected_set == res.connected_set


def test_unserializable_extras_are_recorded_not_dropped_silently():
    g = gen.grid_2d(5, 5)
    res = solve(g, 1, "seq.wreach", certify=True)
    assert "order" in res.extras  # a LinearOrder: not JSON-representable
    data = res.to_dict()
    assert "order" not in data["extras"]
    assert "order" in data["extras_omitted"]
    # The document is genuinely JSON-serializable end to end.
    json.loads(json.dumps(data))


def test_numpy_values_in_extras_convert():
    res = SolveResult(
        algorithm="x", radius=1, order_strategy="", dominators=(1, 2),
        connected_set=None, certificate=None, rounds=None, total_words=None,
        phase_rounds=None, wall_time_s=0.5, raw=object(),
        extras={
            "np_int": np.int64(7),
            "np_float": np.float64(0.25),
            "np_bool": np.bool_(True),
            "np_array": np.arange(3),
            "nested": {"sizes": (np.int32(1), 2)},
        },
    )
    clone = _roundtrip(res)
    assert clone.extras == {
        "np_int": 7,
        "np_float": 0.25,
        "np_bool": True,
        "np_array": [0, 1, 2],
        "nested": {"sizes": [1, 2]},
    }


def test_non_finite_floats_are_omitted_for_strict_parsers():
    res = SolveResult(
        algorithm="x", radius=1, order_strategy="", dominators=(0,),
        connected_set=None, certificate=None, rounds=None, total_words=None,
        phase_rounds=None, wall_time_s=0.0, raw=None,
        extras={"nan": float("nan"), "inf": np.float64("inf"), "ok": 0.5,
                "nested": [1.0, float("inf")]},
    )
    data = res.to_dict()
    assert data["extras"] == {"ok": 0.5}
    assert data["extras_omitted"] == ["inf", "nan", "nested"]
    json.loads(res.to_json())  # strict round-trip, no NaN literals


def test_object_dtype_array_extras_are_omitted_not_crashing():
    res = SolveResult(
        algorithm="x", radius=1, order_strategy="", dominators=(0,),
        connected_set=None, certificate=None, rounds=None, total_words=None,
        phase_rounds=None, wall_time_s=0.0, raw=None,
        extras={"weird": np.array([object()], dtype=object),
                "fine": np.array([1, 2])},
    )
    data = res.to_dict()
    assert data["extras"] == {"fine": [1, 2]}
    assert data["extras_omitted"] == ["weird"]
    json.loads(res.to_json())  # genuinely serializable


def test_lp_bound_roundtrips_as_float():
    g = gen.grid_2d(5, 5)
    res = solve(g, 1, "seq.wreach", certify=True, with_lp=True)
    clone = _roundtrip(res)
    assert clone.certificate.lp_bound == res.certificate.lp_bound
    assert clone.certificate.realized_ratio_upper == \
        res.certificate.realized_ratio_upper


def test_schema_tag_present_and_checked():
    import pytest

    g = gen.grid_2d(4, 4)
    res = solve_request(SolveRequest(graph=g, radius=1))
    data = res.to_dict()
    assert data["schema"] == 1
    data["schema"] = 99
    with pytest.raises(ValueError, match="schema"):
        SolveResult.from_dict(data)


def test_harness_writes_runs_json(tmp_path, monkeypatch):
    from repro.bench import harness
    from repro.bench.tables import Table

    monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
    g = gen.grid_2d(4, 4)
    runs = [solve(g, 1, "seq.wreach"), solve(g, 1, "seq.greedy")]
    table = Table("t", ["a"])
    table.add("row")
    harness.write_result("unit_json", table, runs=runs)
    payload = json.loads((tmp_path / "unit_json.runs.json").read_text())
    assert [row["algorithm"] for row in payload] == ["seq.wreach", "seq.greedy"]
    # Every row carries memory provenance; from_dict tolerates the key.
    assert all(row["peak_rss_kb"] > 0 for row in payload)
    restored = [SolveResult.from_dict(row) for row in payload]
    assert [r.dominators for r in restored] == [
        tuple(r.dominators) for r in runs
    ]
