"""Graph file I/O and the command-line interface."""

import pytest

from repro.cli import main
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.io import dumps, loads, read_edge_list, write_edge_list


def test_roundtrip_string():
    g = gen.grid_2d(4, 4)
    assert loads(dumps(g)) == g


def test_roundtrip_file(tmp_path):
    g = gen.k_tree(20, 2, seed=1)
    path = tmp_path / "g.edges"
    write_edge_list(g, path)
    assert read_edge_list(path) == g


def test_loads_with_comments():
    text = "# a comment\n3 2\n0 1\n\n1 2\n"
    g = loads(text)
    assert g.n == 3 and g.m == 2


def test_loads_errors():
    with pytest.raises(GraphError):
        loads("")
    with pytest.raises(GraphError):
        loads("3\n0 1\n")
    with pytest.raises(GraphError):
        loads("3 2\n0 1\n")  # promises 2 edges, has 1
    with pytest.raises(GraphError):
        loads("3 1\n0 1 2\n")


def test_isolated_vertices_roundtrip():
    from repro.graphs.build import from_edges

    g = from_edges(5, [(0, 1)])
    assert loads(dumps(g)) == g


def _write_grid(tmp_path):
    path = tmp_path / "grid.edges"
    write_edge_list(gen.grid_2d(5, 5), path)
    return str(path)


def test_cli_info(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["info", path]) == 0
    out = capsys.readouterr().out
    assert "degeneracy = 2" in out
    assert "wcol_2" in out


def test_cli_domset(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["domset", path, "-r", "1", "--prune", "--lp", "--show"]) == 0
    out = capsys.readouterr().out
    assert "|D| =" in out
    assert "certified ratio" in out
    assert "LP lower bound" in out
    assert "D =" in out


def test_cli_domset_exact_and_connect(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["domset", path, "-r", "2", "--exact", "--connect"]) == 0
    out = capsys.readouterr().out
    assert "exact OPT" in out
    assert "connected |D'|" in out
    assert "valid: True" in out


def test_cli_distributed(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["distributed", path, "-r", "1", "--connect"]) == 0
    out = capsys.readouterr().out
    assert "total rounds" in out
    assert "connected |D'|" in out


def test_cli_generate_family(tmp_path, capsys):
    out_file = tmp_path / "out.edges"
    assert main(["generate", "grid", "4", "6", "-o", str(out_file)]) == 0
    g = read_edge_list(out_file)
    assert g.n == 24


def test_cli_generate_workload(tmp_path):
    out_file = tmp_path / "w.edges"
    assert main(["generate", "outerplanar200", "-o", str(out_file)]) == 0
    assert read_edge_list(out_file).n == 200


def test_cli_generate_unknown(tmp_path, capsys):
    assert main(["generate", "quantumfoam", "-o", str(tmp_path / "x")]) == 2


def test_cli_solve_subcommand(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["solve", path, "-a", "seq.greedy", "-r", "1", "--show"]) == 0
    out = capsys.readouterr().out
    assert "algorithm = seq.greedy" in out
    assert "|D| =" in out
    assert "D =" in out
    assert "wall time" in out


def test_cli_solve_with_params_and_certify(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["solve", path, "-a", "dist.congest", "-r", "1",
                 "--param", "order_mode=augmented", "--connect"]) == 0
    out = capsys.readouterr().out
    assert "total rounds" in out
    assert "connected |D'|" in out


def test_cli_list_solvers(capsys):
    assert main(["list-solvers"]) == 0
    out = capsys.readouterr().out
    for name in ("seq.wreach", "dist.congest", "local.planar-cds"):
        assert name in out
    assert "CONGEST_BC" in out


def test_cli_list_solvers_shows_engines_and_radius(capsys):
    """The capability metadata is visible from the terminal: engine
    declarations (batch/pernode) and radius ranges per solver."""
    assert main(["list-solvers"]) == 0
    out = capsys.readouterr().out
    header = out.splitlines()[0]
    assert "engines" in header and "radius" in header
    congest = next(ln for ln in out.splitlines() if ln.startswith("dist.congest "))
    assert "batch/pernode" in congest
    assert "[1, inf]" in congest
    unified = next(
        ln for ln in out.splitlines() if ln.startswith("dist.congest-unified")
    )
    assert "batch/pernode" in unified  # batch-capable since the UnifiedBatch port
    greedy = next(ln for ln in out.splitlines() if ln.startswith("seq.greedy"))
    assert " - " in greedy  # engine-free solvers show a dash


def test_cli_warm_then_solve_with_store(tmp_path, capsys):
    path = _write_grid(tmp_path)
    store = str(tmp_path / "store")
    assert main(["warm", path, "--store", store, "-r", "2"]) == 0
    out = capsys.readouterr().out
    assert "wcol_4" in out
    assert "computed" in out
    # Warming again: everything already persisted.
    assert main(["warm", path, "--store", store, "-r", "2"]) == 0
    out = capsys.readouterr().out
    assert "0 computed" in out
    # A solve against the warm store works and certifies.
    assert main(["solve", path, "-a", "seq.wreach", "-r", "2",
                 "--certify", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "|D| =" in out and "certified ratio" in out


def test_cli_workspace_info_rejects_missing_store(tmp_path, capsys):
    """A read-only command must not create an empty store from a typo."""
    missing = tmp_path / "no-such-store"
    assert main(["workspace", "info", "--store", str(missing)]) == 2
    assert "error:" in capsys.readouterr().err
    assert not missing.exists()


def test_cli_workspace_info(tmp_path, capsys):
    path = _write_grid(tmp_path)
    store = str(tmp_path / "store")
    assert main(["warm", path, "--store", store]) == 0
    capsys.readouterr()
    assert main(["workspace", "info", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "graphs (1):" in out
    assert "n =      25" in out
    assert "orders" in out and "wreach" in out
    assert "total size" in out


def test_cli_domset_prune_certifies_pruned_set(tmp_path, capsys):
    """Regression: the certificate/ratio must describe the pruned set."""
    path = _write_grid(tmp_path)
    assert main(["domset", path, "-r", "1", "--prune", "--exact"]) == 0
    out = capsys.readouterr().out
    # |D| = pruned (raw unpruned), and the realized ratio uses pruned.
    import re

    m = re.search(r"\|D\| = (\d+) \(raw (\d+)\)", out)
    assert m, out
    pruned, raw = int(m.group(1)), int(m.group(2))
    assert pruned <= raw
    m2 = re.search(r"exact OPT = (\d+)\s+\(realized ratio ([0-9.]+)\)", out)
    assert m2, out
    opt, ratio = int(m2.group(1)), float(m2.group(2))
    assert abs(ratio - pruned / opt) < 1e-3


def test_cli_distributed_order_mode_and_unified(tmp_path, capsys):
    path = _write_grid(tmp_path)
    assert main(["distributed", path, "-r", "1",
                 "--order-mode", "augmented"]) == 0
    out = capsys.readouterr().out
    assert "total rounds" in out
    assert main(["distributed", path, "-r", "1", "--unified",
                 "--connect"]) == 0
    out = capsys.readouterr().out
    assert "fixed schedule" in out
    assert "connected |D'|" in out
