"""Exact tree DP for distance-r domination."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.exact import brute_force_domset, exact_domset
from repro.core.tree_exact import is_tree, tree_domset_exact
from repro.errors import GraphError, SolverError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import random_tree


def test_is_tree():
    assert is_tree(gen.path_graph(5))
    assert is_tree(gen.balanced_tree(3, 2))
    assert not is_tree(gen.cycle_graph(4))
    assert not is_tree(from_edges(4, [(0, 1), (2, 3)]))  # forest, not tree
    assert is_tree(from_edges(0, []))


@pytest.mark.parametrize("radius", [0, 1, 2, 3])
def test_matches_milp_on_random_trees(radius):
    for seed in range(6):
        g = random_tree(35, seed=seed)
        size, chosen = tree_domset_exact(g, radius)
        opt, _ = exact_domset(g, radius)
        assert size == opt, (seed, radius)
        assert is_distance_r_dominating_set(g, chosen, radius)
        assert len(chosen) == size


@pytest.mark.parametrize("radius", [1, 2])
def test_matches_brute_force_small(radius):
    for seed in range(4):
        g = random_tree(12, seed=100 + seed)
        size, _ = tree_domset_exact(g, radius)
        bf, _ = brute_force_domset(g, radius)
        assert size == bf


def test_known_path_values():
    # gamma_r(P_n) = ceil(n / (2r+1)).
    for n in (1, 5, 9, 10, 20):
        for r in (1, 2, 3):
            size, _ = tree_domset_exact(gen.path_graph(n), r)
            assert size == -(-n // (2 * r + 1)), (n, r)


def test_star():
    g = gen.star_graph(20)
    assert tree_domset_exact(g, 1)[0] == 1
    assert tree_domset_exact(g, 2)[0] == 1


def test_balanced_tree_values():
    g = gen.balanced_tree(2, 3)  # 15 vertices
    for r in (1, 2):
        size, chosen = tree_domset_exact(g, r)
        opt, _ = exact_domset(g, r)
        assert size == opt


def test_radius_zero_selects_all():
    g = gen.path_graph(6)
    size, chosen = tree_domset_exact(g, 0)
    assert size == 6 and chosen == list(range(6))


def test_forest_handled_per_component():
    g = from_edges(8, [(0, 1), (1, 2), (4, 5), (5, 6), (6, 7)])
    size, chosen = tree_domset_exact(g, 1)
    assert is_distance_r_dominating_set(g, chosen, 1)
    # P3 needs 1, isolated vertex 3 needs 1, P4 needs 2.
    assert size == 1 + 1 + 2


def test_rejects_cycles():
    with pytest.raises(SolverError):
        tree_domset_exact(gen.cycle_graph(5), 1)
    # Cycle hidden among isolated vertices (m <= n - 1 overall).
    g = from_edges(6, [(0, 1), (1, 2), (0, 2)])
    with pytest.raises(SolverError):
        tree_domset_exact(g, 1)


def test_rejects_negative_radius():
    with pytest.raises(GraphError):
        tree_domset_exact(gen.path_graph(3), -1)


def test_large_tree_fast():
    g = random_tree(5000, seed=3)
    size, chosen = tree_domset_exact(g, 2)
    assert is_distance_r_dominating_set(g, chosen, 2)
    assert size >= 1
