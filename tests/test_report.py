"""Report assembly tooling."""

import pathlib

from repro.analysis.report import EXPERIMENT_ORDER, assemble_report, main


def test_assemble_with_partial_results(tmp_path):
    (tmp_path / "t1_approx_ratio.txt").write_text("== T1 ==\nrow\n")
    (tmp_path / "custom_extra.txt").write_text("== X ==\n")
    text = assemble_report(tmp_path)
    assert "## t1_approx_ratio" in text
    assert "== T1 ==" in text
    assert "## custom_extra (unregistered)" in text
    assert "## Missing experiments" in text
    assert "- t2_cover_quality" in text


def test_assemble_empty_dir(tmp_path):
    text = assemble_report(tmp_path)
    for name in EXPERIMENT_ORDER:
        assert f"- {name}" in text


def test_main_writes_file(tmp_path, capsys):
    (tmp_path / "t1_approx_ratio.txt").write_text("data\n")
    out = tmp_path / "report.md"
    assert main(["-d", str(tmp_path), "-o", str(out)]) == 0
    assert "data" in out.read_text()


def test_main_prints(tmp_path, capsys):
    assert main(["-d", str(tmp_path)]) == 0
    assert "Raw experiment tables" in capsys.readouterr().out


def test_real_results_assemble():
    """If the repo's results dir exists, the report must assemble cleanly."""
    from repro.bench.harness import RESULTS_DIR

    if not pathlib.Path(RESULTS_DIR).exists():
        return
    text = assemble_report(RESULTS_DIR)
    assert "Raw experiment tables" in text
