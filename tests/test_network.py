"""The synchronous simulator engine."""

import pytest

from repro.distributed.model import Model
from repro.distributed.network import Network
from repro.distributed.node import NodeAlgorithm
from repro.errors import ModelViolation, SimulationError
from repro.graphs import generators as gen


class Flood(NodeAlgorithm):
    """Classic flood: learn the max id in the graph in diameter rounds."""

    def __init__(self, rounds: int) -> None:
        super().__init__()
        self.rounds = rounds
        self.best = -1
        self.t = 0

    def on_start(self, ctx):
        self.best = ctx.node
        return self.best

    def on_round(self, ctx, inbox):
        self.t += 1
        improved = False
        for _src, val in inbox:
            if val > self.best:
                self.best = val
                improved = True
        if self.t >= self.rounds:
            self.halted = True
            return None
        return self.best if improved else None

    def output(self):
        return self.best


def test_flood_learns_max_id():
    g = gen.path_graph(6)  # diameter 5
    net = Network(g, Model.CONGEST_BC, lambda v: Flood(6))
    res = net.run()
    assert all(res.outputs[v] == 5 for v in range(6))
    assert res.rounds == 6


def test_flood_stats_recorded():
    g = gen.cycle_graph(5)
    net = Network(g, Model.CONGEST_BC, lambda v: Flood(4))
    res = net.run()
    assert res.total_messages > 0
    assert res.max_payload_words == 1
    assert res.normalized_rounds(1) >= len(res.round_stats)


class P2P(NodeAlgorithm):
    """Sends a distinct message to each neighbor (CONGEST only)."""

    def on_start(self, ctx):
        self.halted = True
        return {u: (ctx.node, u) for u in ctx.neighbors}

    def on_round(self, ctx, inbox):  # pragma: no cover
        self.halted = True
        return None


def test_point_to_point_rejected_in_bc():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST_BC, lambda v: P2P())
    with pytest.raises(ModelViolation):
        net.run()


def test_point_to_point_allowed_in_congest():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST, lambda v: P2P())
    res = net.run()
    assert res.total_messages == 4  # 2 + 2x1 directed... each edge twice


class BadAddress(NodeAlgorithm):
    def on_start(self, ctx):
        self.halted = True
        return {99: "hi"}

    def on_round(self, ctx, inbox):  # pragma: no cover
        return None


def test_unknown_neighbor_rejected():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST, lambda v: BadAddress())
    with pytest.raises(ModelViolation):
        net.run()


class BigTalker(NodeAlgorithm):
    def on_start(self, ctx):
        return tuple(range(50))

    def on_round(self, ctx, inbox):
        self.halted = True
        return None


def test_strict_bandwidth_enforced():
    g = gen.path_graph(3)
    net = Network(
        g, Model.CONGEST_BC, lambda v: BigTalker(), words_per_round=1, strict_bandwidth=True
    )
    with pytest.raises(ModelViolation):
        net.run()


def test_lenient_bandwidth_accounts_normalized():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST_BC, lambda v: BigTalker())
    res = net.run()
    assert res.max_payload_words == 50
    assert res.normalized_rounds(1) >= 50


class NeverHalts(NodeAlgorithm):
    def on_round(self, ctx, inbox):
        return None


def test_deadlock_detection():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST_BC, lambda v: NeverHalts())
    with pytest.raises(SimulationError):
        net.run(max_rounds=100_000)


class SlowCounter(NodeAlgorithm):
    """Halts silently after a fixed number of quiet rounds."""

    def __init__(self, wait: int) -> None:
        super().__init__()
        self.wait = wait
        self.t = 0

    def on_round(self, ctx, inbox):
        self.t += 1
        if self.t >= self.wait:
            self.halted = True
        return None

    def output(self):
        return self.t


def test_quiet_phase_counting_tolerated():
    g = gen.path_graph(4)
    net = Network(g, Model.CONGEST_BC, lambda v: SlowCounter(10))
    res = net.run()
    assert all(res.outputs[v] == 10 for v in range(4))


def test_max_rounds_exceeded():
    g = gen.path_graph(3)
    net = Network(g, Model.CONGEST_BC, lambda v: SlowCounter(50))
    with pytest.raises(SimulationError):
        net.run(max_rounds=10)


def test_determinism():
    g = gen.grid_2d(4, 4)
    r1 = Network(g, Model.CONGEST_BC, lambda v: Flood(8)).run()
    r2 = Network(g, Model.CONGEST_BC, lambda v: Flood(8)).run()
    assert r1.outputs == r2.outputs
    assert r1.rounds == r2.rounds
    assert [s.total_words for s in r1.round_stats] == [
        s.total_words for s in r2.round_stats
    ]


def test_inbox_sorted_by_sender():
    received = {}

    class Recorder(NodeAlgorithm):
        def on_start(self, ctx):
            return ctx.node

        def on_round(self, ctx, inbox):
            received[ctx.node] = [src for src, _ in inbox]
            self.halted = True
            return None

    g = gen.star_graph(5)
    Network(g, Model.CONGEST_BC, lambda v: Recorder()).run()
    assert received[0] == [1, 2, 3, 4]


class OneShotBroadcast(NodeAlgorithm):
    """Broadcasts a fixed payload once, then halts."""

    def __init__(self, payload) -> None:
        super().__init__()
        self.payload = payload

    def on_start(self, ctx):
        self.halted = True
        return self.payload

    def on_round(self, ctx, inbox):  # pragma: no cover
        self.halted = True
        return None


def test_total_words_counts_every_edge_copy():
    """Per-edge semantics pinned: a w-word broadcast over degree d costs d*w."""
    g = gen.star_graph(5)  # center degree 4, leaves degree 1
    payload = (1, 2, 3)  # 3 words
    net = Network(g, Model.CONGEST_BC, lambda v: OneShotBroadcast(payload))
    res = net.run()
    # One round of traffic: center sends 4 copies, each leaf sends 1.
    assert len(res.round_stats) == 1
    stats = res.round_stats[0]
    assert stats.messages == 2 * g.m == 8
    assert stats.total_words == 8 * 3
    assert res.total_words == 24
    assert stats.max_payload_words == 3


def test_broadcast_words_counts_one_payload_per_source():
    """Distinct-broadcast semantics: each sender's payload counted once."""
    g = gen.star_graph(5)
    payload = (1, 2, 3)
    res = Network(g, Model.CONGEST_BC, lambda v: OneShotBroadcast(payload)).run()
    stats = res.round_stats[0]
    # 5 senders, one 3-word broadcast each — fan-out does not multiply.
    assert stats.broadcast_words == 5 * 3
    assert res.total_broadcast_words == 15
    # CONGEST_BC invariant: per-edge traffic = sum over receivers, so it
    # always dominates the distinct-broadcast volume.
    assert res.total_words >= res.total_broadcast_words


def test_broadcast_and_total_words_coincide_for_point_to_point():
    class OneShotP2P(NodeAlgorithm):
        def on_start(self, ctx):
            self.halted = True
            return {u: (ctx.node, u) for u in ctx.neighbors}

        def on_round(self, ctx, inbox):  # pragma: no cover
            return None

    g = gen.path_graph(3)
    res = Network(g, Model.CONGEST, lambda v: OneShotP2P()).run()
    stats = res.round_stats[0]
    # Each directed edge carries its own distinct 2-word message.
    assert stats.messages == 4
    assert stats.total_words == stats.broadcast_words == 8


def test_isolated_vertex_broadcast_costs_nothing():
    from repro.graphs.build import from_edges

    class Talk(NodeAlgorithm):
        def on_start(self, ctx):
            self.halted = True
            return (1, 2, 3, 4, 5)

        def on_round(self, ctx, inbox):  # pragma: no cover
            return None

    g = from_edges(3, [(0, 1)])  # vertex 2 is isolated
    res = Network(g, Model.CONGEST_BC, lambda v: Talk()).run()
    # The isolated vertex's "broadcast" reaches nobody and is not traffic:
    # neither per-edge nor distinct accounting may see it.
    assert res.round_stats[0].messages == 2
    assert res.round_stats[0].total_words == 10
    assert res.round_stats[0].broadcast_words == 10
    assert res.max_payload_words == 5


def test_context_neighbor_set_cached_and_sorted():
    g = gen.star_graph(4)
    net = Network(g, Model.CONGEST_BC, lambda v: OneShotBroadcast(0))
    ctx = net.contexts[0]
    assert ctx.neighbors == tuple(sorted(ctx.neighbors))
    assert ctx.neighbor_set == frozenset(ctx.neighbors)
