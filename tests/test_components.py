"""Connected components."""

from repro.graphs import generators as gen
from repro.graphs.build import empty_graph, from_edges
from repro.graphs.components import (
    component_count,
    connected_components,
    is_connected,
    largest_component,
)


def test_single_component():
    g = gen.grid_2d(3, 3)
    labels = connected_components(g)
    assert set(labels.tolist()) == {0}
    assert is_connected(g)
    assert component_count(g) == 1


def test_multiple_components():
    g = from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)])
    labels = connected_components(g)
    assert component_count(g) == 3
    assert labels[0] == labels[1] == labels[2]
    assert labels[3] == labels[4]
    assert labels[5] == labels[6]
    assert len({int(labels[0]), int(labels[3]), int(labels[5])}) == 3


def test_isolated_vertices_are_components():
    g = empty_graph(4)
    assert component_count(g) == 4
    assert not is_connected(g)


def test_empty_graph_connected_by_convention():
    g = empty_graph(0)
    assert component_count(g) == 0
    assert is_connected(g)


def test_largest_component():
    g = from_edges(8, [(0, 1), (1, 2), (2, 3), (5, 6)])
    h, mapping = largest_component(g)
    assert h.n == 4
    assert mapping.tolist() == [0, 1, 2, 3]
    assert is_connected(h)


def test_largest_component_of_empty():
    g = empty_graph(0)
    h, mapping = largest_component(g)
    assert h.n == 0
    assert len(mapping) == 0
