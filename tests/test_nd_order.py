"""Distributed order computations (Theorem 3 engines)."""


from repro.distributed.nd_order import (
    default_threshold,
    distributed_augmented_order,
    distributed_h_partition_order,
)
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.wreach import wcol_of_order


def test_h_partition_order_is_permutation(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    assert sorted(oc.order.by_rank.tolist()) == list(range(g.n))
    assert oc.mode == "h_partition"


def test_h_partition_order_few_smaller_neighbors(medium_graph):
    """Core property: every vertex has <= threshold L-smaller neighbors."""
    g = medium_graph
    thr = default_threshold(g)
    oc = distributed_h_partition_order(g, thr)
    for v in range(g.n):
        smaller = sum(1 for u in g.neighbors(v) if oc.order.less(int(u), v))
        assert smaller <= thr


def test_super_ids_induce_order(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    sids = oc.super_ids()
    by_sid = sorted(range(g.n), key=lambda v: sids[v])
    assert by_sid == oc.order.by_rank.tolist()


def test_default_threshold():
    g = gen.k_tree(30, 3, seed=0)
    assert default_threshold(g) == 6
    assert default_threshold(gen.path_graph(5)) == 2


def test_empty_graph():
    g = from_edges(0, [])
    oc = distributed_h_partition_order(g)
    assert oc.rounds == 0
    oc2 = distributed_augmented_order(g, 2)
    assert oc2.rounds == 0


def test_h_partition_wcol_bounded_on_grids():
    """Measured c stays small and flat as the grid grows (T7 invariant)."""
    vals = []
    for side in (6, 10, 14):
        g = gen.grid_2d(side, side)
        oc = distributed_h_partition_order(g)
        vals.append(wcol_of_order(g, oc.order, 2))
    assert max(vals) <= 12
    assert vals[-1] <= vals[0] + 3  # flat-ish, not growing with n


def test_augmented_order_valid(small_graph):
    g = small_graph
    oc = distributed_augmented_order(g, 1)
    assert sorted(oc.order.by_rank.tolist()) == list(range(g.n))
    assert oc.mode == "augmented"


def test_augmented_costs_more_rounds_than_base():
    g = gen.grid_2d(6, 6)
    base = distributed_h_partition_order(g)
    aug = distributed_augmented_order(g, 2)
    assert aug.rounds >= base.rounds


def test_augmented_wcol_competitive():
    g = gen.grid_2d(8, 8)
    r = 2
    aug = distributed_augmented_order(g, r)
    base = distributed_h_partition_order(g)
    # The augmented order should be at least as good at its target radius.
    assert wcol_of_order(g, aug.order, 2 * r) <= wcol_of_order(g, base.order, 2 * r) + 2


def test_rounds_reported_positive(medium_graph):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    assert oc.rounds >= 1
    assert oc.normalized_rounds >= oc.rounds  # payloads can exceed one word
    assert oc.total_words > 0
