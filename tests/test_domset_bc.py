"""Theorem 9: distributed dominating set == sequential reference."""

import numpy as np
import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_by_wreach
from repro.core.exact import exact_domset
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.nd_order import distributed_h_partition_order
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph, random_tree
from repro.orders.wreach import wcol_of_order


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_distributed_equals_sequential(medium_graph, radius):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    dist = run_domset_bc(g, radius, oc)
    seq = domset_by_wreach(g, oc.order, radius)
    assert dist.dominators == seq.dominators
    assert np.array_equal(dist.dominator_of, seq.dominator_of)


@pytest.mark.parametrize("radius", [1, 2])
def test_output_dominates(medium_graph, radius):
    g = medium_graph
    res = run_domset_bc(g, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_radius_zero():
    g = gen.grid_2d(3, 3)
    res = run_domset_bc(g, 0)
    assert res.dominators == tuple(range(9))


def test_phase_round_structure(medium_graph):
    g = medium_graph
    radius = 2
    res = run_domset_bc(g, radius)
    assert res.phase_rounds["wreach"] == 2 * radius
    assert res.phase_rounds["election"] <= radius
    assert res.phase_rounds["order"] >= 1
    assert res.total_rounds == sum(res.phase_rounds.values())


def test_theorem9_bound(small_graph):
    """|D| <= c(r) * OPT with measured c."""
    g = small_graph
    radius = 1
    oc = distributed_h_partition_order(g)
    res = run_domset_bc(g, radius, oc)
    opt, _ = exact_domset(g, radius)
    c = wcol_of_order(g, oc.order, 2 * radius)
    assert res.size <= c * max(opt, 1)


def test_trees_and_delaunay():
    for g in (random_tree(80, seed=1), delaunay_graph(80, seed=2)[0]):
        oc = distributed_h_partition_order(g)
        for radius in (1, 2):
            dist = run_domset_bc(g, radius, oc)
            seq = domset_by_wreach(g, oc.order, radius)
            assert dist.dominators == seq.dominators
            assert is_distance_r_dominating_set(g, dist.dominators, radius)


def test_custom_horizon_matches_default(medium_graph):
    """Theorem 10 reuses horizon 2r+1; the elected set must be unchanged."""
    g = medium_graph
    radius = 1
    oc = distributed_h_partition_order(g)
    d_default = run_domset_bc(g, radius, oc)
    d_wide = run_domset_bc(g, radius, oc, horizon=2 * radius + 1)
    assert d_default.dominators == d_wide.dominators


def test_stats_accumulate(medium_graph):
    g = medium_graph
    res = run_domset_bc(g, 1)
    assert res.total_words > 0
    assert set(res.phase_max_words) == {"order", "wreach", "election"}


def test_negative_radius_rejected():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        run_domset_bc(gen.path_graph(3), -1)
