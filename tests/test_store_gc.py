"""Store lifecycle: leases, last_used, tmp sweep, LRU GC, quarantine.

The concurrent-warmer test forks real subprocesses over one store root —
the acceptance scenario for the lease protocol (exactly one computes,
zero torn files).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.api import store_gc
from repro.api.store import ArtifactStore, graph_digest
from repro.api.workspace import Workspace
from repro.graphs import generators as gen


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------


def test_lease_acquire_release_cycle(tmp_path):
    store = ArtifactStore(tmp_path)
    with store.lease("abc") as lk:
        assert lk.acquired
        assert store_gc.is_leased(tmp_path, "abc")
        holder = lk.holder()
        assert holder["pid"] == os.getpid()
    assert not store_gc.is_leased(tmp_path, "abc")
    assert not lk.path.exists()


def test_lease_is_reentrant_per_process(tmp_path):
    store = ArtifactStore(tmp_path)
    with store.lease("abc") as outer:
        with store.lease("abc") as inner:
            assert outer.acquired and inner.acquired
        # Inner release must not drop the outer hold.
        assert store_gc.is_leased(tmp_path, "abc")
    assert not store_gc.is_leased(tmp_path, "abc")


def test_lease_contention_times_out_to_compute_anyway(tmp_path):
    # A foreign (different-process) holder: write the lease file directly.
    path = tmp_path / store_gc.LEASE_DIR / "abc.lease"
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"pid": 999999, "time": time.time(), "host": "x"}))
    lease = store_gc.Lease(tmp_path, "abc", ttl_s=60.0, timeout_s=0.05)
    with lease as lk:
        assert not lk.acquired  # timed out; caller proceeds regardless
    assert path.exists()  # not ours to remove


def test_stale_lease_is_taken_over(tmp_path):
    path = tmp_path / store_gc.LEASE_DIR / "abc.lease"
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"pid": 999999, "time": 0.0, "host": "x"}))
    old = time.time() - 3600.0
    os.utime(path, (old, old))
    assert not store_gc.is_leased(tmp_path, "abc", ttl_s=120.0)  # stale
    lease = store_gc.Lease(tmp_path, "abc", ttl_s=120.0, timeout_s=1.0)
    with lease as lk:
        assert lk.acquired  # takeover
        assert lk.holder()["pid"] == os.getpid()


# ----------------------------------------------------------------------
# last_used + tmp sweep
# ----------------------------------------------------------------------


def test_reads_stamp_last_used(tmp_path):
    g = gen.grid_2d(4, 4)
    store = ArtifactStore(tmp_path)
    digest = store.put_graph(g)
    assert store_gc.last_used(tmp_path, digest) is None
    assert store.get_graph(digest) is not None
    stamped = store_gc.last_used(tmp_path, digest)
    assert stamped is not None and time.time() - stamped < 60.0


def test_sweep_tmp_is_age_gated(tmp_path):
    store = ArtifactStore(tmp_path)
    target = tmp_path / "orders" / "d1"
    target.mkdir(parents=True)
    fresh = target / ".a.npz.123.tmp"
    stale = target / ".b.npz.456.tmp"
    fresh.write_bytes(b"live writer")
    stale.write_bytes(b"orphan")
    old = time.time() - 7200.0
    os.utime(stale, (old, old))
    removed = store.sweep_tmp()  # default hour-scale cutoff
    assert removed == [os.path.join("orders", "d1", ".b.npz.456.tmp")]
    assert fresh.exists() and not stale.exists()
    # Final-name npz files are never candidates.
    keep = target / "real.npz"
    keep.write_bytes(b"x")
    os.utime(keep, (old, old))
    assert store.sweep_tmp() == []
    assert keep.exists()


# ----------------------------------------------------------------------
# GC
# ----------------------------------------------------------------------


def _warmed_store(tmp_path, graphs):
    store = ArtifactStore(tmp_path)
    digests = []
    for g in graphs:
        ws = Workspace(store=store)
        report = ws.warm(g)
        digests.append(report["digest"])
    return store, digests


def test_gc_evicts_lru_down_to_max_bytes(tmp_path):
    store, digests = _warmed_store(
        tmp_path, [gen.grid_2d(4, 4), gen.grid_2d(5, 5), gen.grid_2d(6, 6)]
    )
    # Make usage recency explicit: digests[0] oldest, digests[2] newest.
    for i, d in enumerate(digests):
        stamp = tmp_path / store_gc.LAST_USED_DIR / d
        t = time.time() - (3 - i) * 1000.0
        stamp.parent.mkdir(exist_ok=True)
        stamp.touch()
        os.utime(stamp, (t, t))
    total = store.status()["total_bytes"]
    keep_two = total - 1  # forces at least one eviction
    report = store.gc(keep_two)
    assert report["evicted"][0] == digests[0]  # LRU first
    assert report["after_bytes"] <= keep_two
    assert report["before_bytes"] == total
    left = {row["digest"] for row in store.status()["digests"]}
    assert digests[0] not in left
    assert digests[2] in left  # newest survives


def test_gc_never_evicts_leased_digests(tmp_path):
    store, digests = _warmed_store(tmp_path, [gen.grid_2d(4, 4), gen.grid_2d(5, 5)])
    with store.lease(digests[0]):
        report = store.gc(0)  # evict everything evictable
        assert digests[0] in report["skipped_leased"]
        assert digests[0] not in report["evicted"]
        assert digests[1] in report["evicted"]
        assert store.get_graph(digests[0]) is not None
    # Lease released: now it goes too.
    report = store.gc(0)
    assert report["evicted"] == [digests[0]]
    assert store.status()["digests"] == []


def test_gc_sweeps_orphaned_tmp_files(tmp_path):
    store, _ = _warmed_store(tmp_path, [gen.grid_2d(4, 4)])
    orphan = tmp_path / "orders" / "deadbeef" / ".x.npz.1.tmp"
    orphan.parent.mkdir(parents=True)
    orphan.write_bytes(b"torn")
    old = time.time() - 7200.0
    os.utime(orphan, (old, old))
    report = store.gc(10**12)  # size bound not binding; sweep still runs
    assert report["swept_tmp"] == [os.path.join("orders", "deadbeef", ".x.npz.1.tmp")]
    assert not orphan.exists()
    assert report["evicted"] == []


def test_status_reports_sizes_lease_and_quarantine(tmp_path):
    store, digests = _warmed_store(tmp_path, [gen.grid_2d(4, 4)])
    qfile = tmp_path / store_gc.QUARANTINE_DIR / "orders" / digests[0] / "x.npz"
    qfile.parent.mkdir(parents=True)
    qfile.write_bytes(b"rotten")
    qfile.with_name("x.npz.reason.txt").write_text("unreadable order npz\n")
    with store.lease(digests[0]):
        info = store.status()
        (row,) = [r for r in info["digests"] if r["digest"] == digests[0]]
        assert row["leased"] is True
        assert row["lease_holder"]["pid"] == os.getpid()
        assert row["bytes"] > 0 and row["files"] > 0
    (q,) = info["quarantine"]
    assert q["path"] == os.path.join("orders", digests[0], "x.npz")
    assert q["reason"].startswith("unreadable order npz")
    assert info["total_bytes"] >= row["bytes"]


def test_lifecycle_summary_aggregates_without_inventory(tmp_path):
    store, digests = _warmed_store(tmp_path, [gen.grid_2d(4, 4)])
    qfile = tmp_path / store_gc.QUARANTINE_DIR / "orders" / digests[0] / "x.npz"
    qfile.parent.mkdir(parents=True)
    qfile.write_bytes(b"rotten")
    qfile.with_name("x.npz.reason.txt").write_text("unreadable order npz\n")
    # A stale foreign lease counts toward total but not active.
    stale = tmp_path / store_gc.LEASE_DIR / "feedface.lease"
    stale.parent.mkdir(parents=True, exist_ok=True)
    stale.write_text(json.dumps({"pid": 999999, "time": 0.0, "host": "x"}))
    old = time.time() - 10 * 24 * 3600.0
    os.utime(stale, (old, old))
    with store.lease(digests[0]):
        summary = store.lifecycle_summary()
        assert summary["leases_active"] == 1
        assert summary["leases_total"] == 2
    assert summary["quarantined"] == 1
    assert summary["quarantined_bytes"] == len(b"rotten")
    # The workspace surfaces the same aggregate under store stats, so
    # status consumers never reach into store_gc internals.
    with Workspace(store=tmp_path, workers=0) as ws:
        info = ws.info()
    assert info["store"]["lifecycle"]["quarantined"] == 1


# ----------------------------------------------------------------------
# Corruption quarantine (two strikes)
# ----------------------------------------------------------------------


def test_two_validation_failures_quarantine_the_file(tmp_path):
    g = gen.grid_2d(4, 4)
    store = ArtifactStore(tmp_path)
    digest = store.put_graph(g)
    path = tmp_path / "graphs" / f"{digest}.npz"
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])  # rot
    assert store.get_graph(digest) is None  # strike 1: miss, file stays
    assert path.exists()
    assert store.get_graph(digest) is None  # strike 2: quarantined
    assert not path.exists()
    qpath = tmp_path / store_gc.QUARANTINE_DIR / "graphs" / f"{digest}.npz"
    assert qpath.exists()
    note = qpath.with_name(qpath.name + ".reason.txt").read_text()
    assert "strikes: 2" in note
    # The slot is now a clean miss: a rewrite fills it and loads again.
    store.put_graph(g, digest=digest)
    assert store.get_graph(digest) is not None


def test_successful_rewrite_clears_strikes(tmp_path):
    g = gen.grid_2d(4, 4)
    store = ArtifactStore(tmp_path)
    digest = store.put_graph(g)
    path = tmp_path / "graphs" / f"{digest}.npz"
    path.write_bytes(b"not an npz")
    assert store.get_graph(digest) is None  # strike 1
    (tmp_path / "graphs" / f"{digest}.npz.bad").read_text()  # sidecar exists
    store.put_graph(g, digest=digest)  # path.exists() so put skips...
    # put_graph skips existing paths; force the save to exercise the clear.
    store._save(path, indptr=g.indptr, indices=g.indices)
    assert not (tmp_path / "graphs" / f"{digest}.npz.bad").exists()
    assert store.get_graph(digest) is not None


# ----------------------------------------------------------------------
# Concurrent warmers (subprocess, shared root)
# ----------------------------------------------------------------------

_WARMER = r"""
import json, sys
from repro.api.workspace import Workspace
from repro.api.store import ArtifactStore, graph_digest
from repro.graphs import generators as gen

root = sys.argv[1]
g = gen.grid_2d(7, 7)
store = ArtifactStore(root)
ws = Workspace(store=store)
digest = graph_digest(g)
with store.lease(digest, timeout_s=60.0):
    report = ws.warm(g)
stats = report["stats"]
computed = sum(c.get("computed", 0) for c in stats.values())
loaded = sum(c.get("store_hits", 0) for c in stats.values())
print(json.dumps({"computed": computed, "loaded": loaded,
                  "wcol": report["wcol"], "digest": report["digest"]}))
"""


@pytest.mark.faults
def test_concurrent_warmers_exactly_one_computes(tmp_path):
    """Two processes warm the same digest against one store root: the
    lease serializes them, the loser loads what the winner persisted,
    and no torn or temp files survive."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WARMER, str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        for _ in range(2)
    ]
    outs = []
    for p in procs:
        out, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
        outs.append(json.loads(out.decode().strip().splitlines()[-1]))
    # Exactly one process computed; the other served itself from disk.
    computed_flags = sorted(o["computed"] > 0 for o in outs)
    assert computed_flags == [False, True], outs
    loser = next(o for o in outs if o["computed"] == 0)
    assert loser["loaded"] > 0
    # Both agree on the certificate constant (bit-identical artifacts).
    assert outs[0]["wcol"] == outs[1]["wcol"]
    assert outs[0]["digest"] == outs[1]["digest"]
    # Zero torn files: no temp leftovers, no quarantine, leases released.
    assert list(tmp_path.rglob("*.tmp")) == []
    assert not (tmp_path / store_gc.QUARANTINE_DIR).exists()
    assert list((tmp_path / store_gc.LEASE_DIR).glob("*.lease")) == []
    # And the store round-trips cleanly afterwards.
    store = ArtifactStore(tmp_path)
    digest = outs[0]["digest"]
    g = store.get_graph(digest)
    assert g is not None and graph_digest(g) == digest
