"""Property-based tests (hypothesis) for the core invariants.

Random graphs + random orders + random radii; the invariants under test
are the paper's statements themselves, so any counterexample would be a
genuine bug (or a disproof of the paper).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
    validate_cover,
)
from repro.core.covers import build_cover
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import brute_force_domset
from repro.core.greedy import domset_greedy
from repro.core.prune import prune_dominating_set
from repro.graphs.build import from_edges
from repro.graphs.components import connected_components, largest_component
from repro.orders.degeneracy import degeneracy_order
from repro.orders.linear_order import LinearOrder
from repro.orders.wreach import wcol_of_order, wreach_sets


@st.composite
def random_graph(draw, max_n=18, min_n=1):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if possible:
        edges = draw(
            st.lists(st.sampled_from(possible), max_size=min(3 * n, len(possible)))
        )
    else:
        edges = []
    return from_edges(n, edges)


@st.composite
def graph_with_order(draw, max_n=16):
    g = draw(random_graph(max_n=max_n))
    perm = draw(st.permutations(range(g.n)))
    return g, LinearOrder.from_sequence(list(perm))


@given(graph_with_order(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_algorithm1_equals_definition(gw, radius):
    g, order = gw
    a = domset_sequential(g, order, radius)
    b = domset_by_wreach(g, order, radius)
    assert a.dominators == b.dominators
    assert np.array_equal(a.dominator_of, b.dominator_of)


@given(graph_with_order(), st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_domset_always_dominates(gw, radius):
    g, order = gw
    res = domset_sequential(g, order, radius)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


@given(graph_with_order(max_n=12), st.integers(min_value=1, max_value=2))
@settings(max_examples=40, deadline=None)
def test_theorem5_certified_bound(gw, radius):
    """|D| <= c * OPT for any order, with c measured from that order."""
    g, order = gw
    res = domset_sequential(g, order, radius)
    opt, _ = brute_force_domset(g, radius)
    c = wcol_of_order(g, order, 2 * radius)
    assert res.size <= c * max(opt, 1)


@given(graph_with_order(max_n=14), st.integers(min_value=0, max_value=2))
@settings(max_examples=40, deadline=None)
def test_cover_always_valid(gw, radius):
    g, order = gw
    cover = build_cover(g, order, radius)
    assert validate_cover(g, cover) == []


@given(graph_with_order(max_n=14), st.integers(min_value=1, max_value=2))
@settings(max_examples=40, deadline=None)
def test_dvorak_and_greedy_dominate(gw, radius):
    g, order = gw
    assert is_distance_r_dominating_set(g, domset_dvorak(g, order, radius).dominators, radius)
    assert is_distance_r_dominating_set(g, domset_greedy(g, radius).dominators, radius)


@given(graph_with_order(max_n=14), st.integers(min_value=1, max_value=2))
@settings(max_examples=40, deadline=None)
def test_prune_preserves_domination(gw, radius):
    g, order = gw
    res = domset_sequential(g, order, radius)
    pruned = prune_dominating_set(g, res.dominators, radius)
    assert set(pruned) <= set(res.dominators)
    assert is_distance_r_dominating_set(g, pruned, radius)


@given(graph_with_order(max_n=12), st.integers(min_value=1, max_value=2))
@settings(max_examples=30, deadline=None)
def test_connect_via_wreach_connected_on_components(gw, radius):
    from repro.core.connect import connect_via_wreach

    g, order = gw
    res = domset_sequential(g, order, radius)
    conn = connect_via_wreach(g, order, res.dominators, radius)
    assert is_connected_distance_r_dominating_set(g, conn.vertices, radius)


@given(random_graph(max_n=12), st.integers(min_value=1, max_value=2))
@settings(max_examples=30, deadline=None)
def test_connect_via_minor_on_largest_component(g, radius):
    from repro.core.connect import connect_via_minor

    h, _ = largest_component(g)
    if h.n == 0:
        return
    order, _ = degeneracy_order(h)
    res = domset_sequential(h, order, radius)
    conn = connect_via_minor(h, res.dominators, radius)
    assert is_connected_distance_r_dominating_set(h, conn.vertices, radius)


@given(graph_with_order(max_n=12), st.integers(min_value=0, max_value=3))
@settings(max_examples=40, deadline=None)
def test_distributed_wreach_equals_sequential(gw, horizon):
    from repro.distributed.wreach_bc import run_wreach_bc

    g, order = gw
    class_ids = np.asarray(order.rank, dtype=np.int64)
    outs, _ = run_wreach_bc(g, class_ids, horizon)
    seq = wreach_sets(g, order, horizon)
    for v in range(g.n):
        assert set(outs[v].wreach) == set(seq[v])


@given(graph_with_order(max_n=12), st.integers(min_value=0, max_value=2))
@settings(max_examples=30, deadline=None)
def test_distributed_domset_equals_sequential(gw, radius):
    from repro.distributed.domset_bc import run_domset_bc
    from repro.distributed.nd_order import OrderComputation

    g, order = gw
    oc = OrderComputation(
        order=order,
        class_ids=np.asarray(order.rank, dtype=np.int64),
        rounds=1,
        normalized_rounds=1,
        max_payload_words=1,
        total_words=1,
        mode="test",
    )
    dist = run_domset_bc(g, radius, oc)
    seq = domset_by_wreach(g, order, radius)
    assert dist.dominators == seq.dominators


@given(random_graph(max_n=20))
@settings(max_examples=50, deadline=None)
def test_degeneracy_order_property(g):
    order, d = degeneracy_order(g)
    for v in range(g.n):
        smaller = sum(1 for u in g.neighbors(v) if order.less(int(u), v))
        assert smaller <= d


@given(random_graph(max_n=20))
@settings(max_examples=50, deadline=None)
def test_components_partition(g):
    labels = connected_components(g)
    # Endpoints of every edge share a label.
    for u, v in g.edges():
        assert labels[u] == labels[v]
    if g.n:
        assert set(labels.tolist()) == set(range(int(labels.max()) + 1))


@given(random_graph(max_n=16), st.integers(min_value=0, max_value=3))
@settings(max_examples=50, deadline=None)
def test_wreach_self_membership_and_minimality(g, radius):
    order = LinearOrder.identity(g.n)
    sets_ = wreach_sets(g, order, radius)
    for v in range(g.n):
        assert v in sets_[v]
        for u in sets_[v]:
            assert order.rank[u] <= order.rank[v]


@given(random_graph(max_n=16))
@settings(max_examples=50, deadline=None)
def test_subgraph_preserves_adjacency(g):
    if g.n < 2:
        return
    keep = list(range(0, g.n, 2))
    h, mapping = g.subgraph(keep)
    for i in range(h.n):
        for j in range(i + 1, h.n):
            assert h.has_edge(i, j) == g.has_edge(int(mapping[i]), int(mapping[j]))
