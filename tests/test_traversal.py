"""Traversal primitives against the networkx oracle."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges, to_networkx
from repro.graphs.traversal import (
    UNREACHED,
    ball,
    bfs_distances,
    bfs_tree,
    closed_neighborhood,
    eccentricity,
    graph_radius,
    induced_radius,
    multi_source_distances,
    shortest_path,
)


def _nx_dist(g, source):
    return nx.single_source_shortest_path_length(to_networkx(g), source)


def test_bfs_distances_matches_networkx(small_graph):
    g = small_graph
    for s in range(0, g.n, max(1, g.n // 4)):
        ours = bfs_distances(g, s)
        oracle = _nx_dist(g, s)
        for v in range(g.n):
            assert ours[v] == oracle.get(v, UNREACHED)


def test_bfs_truncation():
    g = gen.path_graph(10)
    d = bfs_distances(g, 0, max_dist=3)
    assert d[3] == 3
    assert d[4] == UNREACHED


def test_bfs_source_out_of_range():
    g = gen.path_graph(3)
    with pytest.raises(GraphError):
        bfs_distances(g, 5)


def test_bfs_disconnected():
    g = from_edges(4, [(0, 1), (2, 3)])
    d = bfs_distances(g, 0)
    assert d[1] == 1
    assert d[2] == UNREACHED and d[3] == UNREACHED


def test_bfs_tree_parents_consistent(small_graph):
    g = small_graph
    parent = bfs_tree(g, 0)
    dist = bfs_distances(g, 0)
    for v in range(g.n):
        if dist[v] > 0:
            p = int(parent[v])
            assert dist[p] == dist[v] - 1
            assert g.has_edge(p, v)
    assert parent[0] == 0


def test_bfs_tree_smallest_parent():
    # Vertex 3 reachable from both 1 and 2 at distance 2; parent must be 1.
    g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    parent = bfs_tree(g, 0)
    assert parent[3] == 1


def test_multi_source_distances():
    g = gen.path_graph(10)
    d = multi_source_distances(g, [0, 9])
    assert d[0] == 0 and d[9] == 0
    assert d[4] == 4 and d[5] == 4


def test_multi_source_empty_sources():
    g = gen.path_graph(3)
    d = multi_source_distances(g, [])
    assert (d == UNREACHED).all()


def test_multi_source_truncated():
    g = gen.path_graph(10)
    d = multi_source_distances(g, [0], max_dist=2)
    assert d[2] == 2 and d[3] == UNREACHED


def test_ball_contents():
    g = gen.grid_2d(5, 5)
    b = ball(g, 12, 1)  # center of the grid
    assert sorted(b.tolist()) == [7, 11, 12, 13, 17]
    assert ball(g, 12, 0).tolist() == [12]


def test_closed_neighborhood():
    g = gen.star_graph(5)
    assert closed_neighborhood(g, 0).tolist() == [0, 1, 2, 3, 4]
    assert closed_neighborhood(g, 2).tolist() == [0, 2]


def test_eccentricity_and_radius():
    g = gen.path_graph(7)
    assert eccentricity(g, 0) == 6
    assert eccentricity(g, 3) == 3
    assert graph_radius(g) == 3


def test_radius_matches_networkx(small_graph):
    g = small_graph
    from repro.graphs.components import is_connected

    if not is_connected(g):
        pytest.skip("radius defined for connected graphs")
    assert graph_radius(g) == nx.radius(to_networkx(g))


def test_radius_disconnected_raises():
    g = from_edges(4, [(0, 1), (2, 3)])
    with pytest.raises(GraphError):
        graph_radius(g)


def test_induced_radius():
    g = gen.cycle_graph(8)
    assert induced_radius(g, [0, 1, 2, 3]) == 2  # induced path of length 3
    with pytest.raises(GraphError):
        induced_radius(g, [0, 4])  # disconnected inside the cycle


def test_shortest_path_endpoints_and_length(small_graph):
    g = small_graph
    dist = bfs_distances(g, 0)
    for v in range(g.n):
        p = shortest_path(g, 0, v)
        if dist[v] == UNREACHED:
            assert p is None
        else:
            assert p is not None
            assert p[0] == 0 and p[-1] == v
            assert len(p) == dist[v] + 1
            assert all(g.has_edge(p[i], p[i + 1]) for i in range(len(p) - 1))


def test_shortest_path_trivial():
    g = gen.path_graph(3)
    assert shortest_path(g, 1, 1) == [1]


def test_shortest_path_respects_max_dist():
    g = gen.path_graph(10)
    assert shortest_path(g, 0, 5, max_dist=3) is None
    assert shortest_path(g, 0, 3, max_dist=3) == [0, 1, 2, 3]
