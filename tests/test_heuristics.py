"""Order baselines and the sort-by-wreach improvement pass."""


from repro.graphs import generators as gen
from repro.orders.degeneracy import degeneracy_order
from repro.orders.heuristics import (
    bfs_order,
    identity_order,
    random_order,
    sort_by_wreach_order,
)
from repro.orders.wreach import wcol_of_order


def test_random_order_deterministic_by_seed():
    g = gen.grid_2d(5, 5)
    assert random_order(g, seed=1) == random_order(g, seed=1)
    assert random_order(g, seed=1) != random_order(g, seed=2)


def test_identity_order():
    g = gen.path_graph(4)
    o = identity_order(g)
    assert o.by_rank.tolist() == [0, 1, 2, 3]


def test_bfs_order_layers_monotone():
    g = gen.grid_2d(4, 4)
    o = bfs_order(g, root=0)
    from repro.graphs.traversal import bfs_distances

    dist = bfs_distances(g, 0)
    # Ranks must be nondecreasing in BFS distance.
    for u in range(g.n):
        for v in range(g.n):
            if dist[u] < dist[v]:
                assert o.rank[u] < o.rank[v]


def test_bfs_order_disconnected():
    from repro.graphs.build import from_edges

    g = from_edges(4, [(0, 1)])
    o = bfs_order(g, root=0)
    # Unreached vertices go last.
    assert o.rank[2] > o.rank[1] and o.rank[3] > o.rank[1]


def test_sort_by_wreach_never_worse(medium_graph):
    """Contract: returns the best order over all passes (incl. start)."""
    g = medium_graph
    start, _ = degeneracy_order(g)
    r = 2
    improved = sort_by_wreach_order(g, start, r, passes=3)
    assert wcol_of_order(g, improved, r) <= wcol_of_order(g, start, r)


def test_sort_by_wreach_empty_graph():
    from repro.graphs.build import from_edges

    g = from_edges(0, [])
    from repro.orders.linear_order import LinearOrder

    out = sort_by_wreach_order(g, LinearOrder.identity(0), 2)
    assert len(out) == 0


def test_sort_by_wreach_often_improves_random():
    g = gen.grid_2d(8, 8)
    start = random_order(g, seed=0)
    improved = sort_by_wreach_order(g, start, 2, passes=3)
    assert wcol_of_order(g, improved, 2) <= wcol_of_order(g, start, 2)
