"""End-to-end pipelines."""

import pytest

from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
)
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph
from repro.pipelines import (
    congest_bc_pipeline,
    make_order,
    planar_cds_pipeline,
    sequential_pipeline,
)


def test_sequential_pipeline_basic():
    g = gen.grid_2d(6, 6)
    run = sequential_pipeline(g, radius=2, with_lp=True)
    assert is_distance_r_dominating_set(g, run.domset.dominators, 2)
    assert run.certificate.certified_c >= 1
    assert run.certificate.lp_bound is not None
    assert run.connected is None


def test_sequential_pipeline_with_connection():
    g = gen.grid_2d(5, 5)
    run = sequential_pipeline(g, radius=1, connect=True)
    assert run.connected is not None
    assert is_connected_distance_r_dominating_set(g, run.connected.vertices, 1)


@pytest.mark.parametrize(
    "strategy", ["degeneracy", "fraternal", "identity", "random", "wreach_sort"]
)
def test_all_order_strategies_work(strategy):
    g = gen.grid_2d(5, 5)
    order = make_order(g, 1, strategy)
    assert sorted(order.by_rank.tolist()) == list(range(g.n))
    run = sequential_pipeline(g, radius=1, order_strategy=strategy)
    assert is_distance_r_dominating_set(g, run.domset.dominators, 1)


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        make_order(gen.path_graph(3), 1, "sorcery")


def test_congest_pipeline():
    g = gen.grid_2d(6, 6)
    run = congest_bc_pipeline(g, radius=1)
    assert is_distance_r_dominating_set(g, run.domset.dominators, 1)
    assert run.connected is None
    assert run.domset.total_rounds > 0


def test_congest_pipeline_with_connection():
    g = gen.grid_2d(5, 6)
    run = congest_bc_pipeline(g, radius=1, connect=True)
    assert run.connected is not None
    assert is_connected_distance_r_dominating_set(g, run.connected.connected_set, 1)


def test_congest_pipeline_augmented_order():
    g = gen.grid_2d(5, 5)
    run = congest_bc_pipeline(g, radius=1, order_mode="augmented")
    assert is_distance_r_dominating_set(g, run.domset.dominators, 1)


def test_congest_pipeline_unknown_order_mode():
    with pytest.raises(ValueError):
        congest_bc_pipeline(gen.path_graph(3), 1, order_mode="psychic")


def test_planar_cds_pipeline():
    g, _ = delaunay_graph(90, seed=11)
    run = planar_cds_pipeline(g)
    assert is_distance_r_dominating_set(g, run.mds.dominators, 1)
    assert is_connected_distance_r_dominating_set(g, run.cds.connected_set, 1)
    assert run.connect_blowup <= 7.0
    assert run.total_rounds <= 11


def test_package_level_exports():
    import repro

    g = repro.generators.grid_2d(4, 4)
    run = repro.sequential_pipeline(g, radius=1)
    assert repro.is_distance_r_dominating_set(g, run.domset.dominators, 1)
