"""Validation oracles themselves."""


from repro.analysis.validate import (
    is_connected_distance_r_dominating_set,
    is_distance_r_dominating_set,
    undominated_vertices,
)
from repro.analysis.stats import linear_fit, summarize_sizes
from repro.graphs import generators as gen
from repro.graphs.build import from_edges


def test_undominated_vertices():
    g = gen.path_graph(7)
    assert undominated_vertices(g, [0], 1).tolist() == [2, 3, 4, 5, 6]
    assert undominated_vertices(g, [3], 3).tolist() == []
    assert undominated_vertices(g, [], 1).tolist() == list(range(7))


def test_is_dominating_basic():
    g = gen.star_graph(6)
    assert is_distance_r_dominating_set(g, [0], 1)
    assert not is_distance_r_dominating_set(g, [1], 1)
    assert is_distance_r_dominating_set(g, [1], 2)


def test_connected_domset_check():
    g = gen.path_graph(7)
    # {1, 5} dominates at r=1 ... no: vertex 3 is at distance 2 from both.
    assert not is_distance_r_dominating_set(g, [1, 5], 1)
    assert is_distance_r_dominating_set(g, [1, 3, 5], 1)
    # But {1, 3, 5} is not connected.
    assert not is_connected_distance_r_dominating_set(g, [1, 3, 5], 1)
    assert is_connected_distance_r_dominating_set(g, [1, 2, 3, 4, 5], 1)


def test_connected_check_per_component():
    g = from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
    # One dominator per component, each dominating its path at r=1.
    assert is_connected_distance_r_dominating_set(g, [1, 4], 1)
    # Missing a component entirely.
    assert not is_connected_distance_r_dominating_set(g, [1], 1)
    # Disconnected within a component.
    g2 = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    assert not is_connected_distance_r_dominating_set(g2, [0, 2, 4], 1)


def test_summarize_sizes():
    s = summarize_sizes([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == 2.5
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert "mean" in s.row()
    empty = summarize_sizes([])
    assert empty.count == 0


def test_linear_fit_recovers_line():
    x = [1, 2, 3, 4, 5]
    y = [2 * xi + 1 for xi in x]
    a, b, r2 = linear_fit(x, y)
    assert abs(a - 2) < 1e-9
    assert abs(b - 1) < 1e-9
    assert r2 > 0.999


def test_linear_fit_degenerate():
    a, b, r2 = linear_fit([1], [5])
    assert b == 5.0 and r2 == 1.0
    a2, b2, r22 = linear_fit([1, 2], [3, 3])
    assert abs(a2) < 1e-12 and r22 == 1.0
