"""Distributed (LOCAL) parallel pruning."""

import pytest

from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.domset import domset_sequential
from repro.core.prune import prune_dominating_set
from repro.distributed.prune_local import local_prune
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph
from repro.orders.degeneracy import degeneracy_order


@pytest.mark.parametrize("radius", [1, 2])
def test_output_still_dominates(small_graph, radius):
    g = small_graph
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, radius)
    res = local_prune(g, ds.dominators, radius)
    assert set(res.dominators) <= set(ds.dominators)
    assert is_distance_r_dominating_set(g, res.dominators, radius)


def test_removes_redundancy_on_grids():
    g = gen.grid_2d(10, 10)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    res = local_prune(g, ds.dominators, 1)
    assert res.removed > 0
    assert len(res.dominators) < ds.size


def test_anytime_validity_with_phase_cap():
    g, _ = delaunay_graph(100, seed=4)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    for cap in (1, 2, 3):
        res = local_prune(g, ds.dominators, 1, max_phases=cap)
        assert is_distance_r_dominating_set(g, res.dominators, 1)
        assert res.phases <= cap


def test_fixpoint_is_1_minimal_under_rule():
    """After convergence no single dominator is removable."""
    import numpy as np

    from repro.graphs.traversal import ball

    g = gen.grid_2d(8, 8)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    res = local_prune(g, ds.dominators, 1)
    kept = set(res.dominators)
    cover = np.zeros(g.n, dtype=np.int64)
    for v in kept:
        cover[ball(g, v, 1)] += 1
    for v in kept:
        assert not bool(np.all(cover[ball(g, v, 1)] >= 2)), v


def test_comparable_to_sequential_prune():
    g = gen.grid_2d(9, 9)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 1)
    seq = prune_dominating_set(g, ds.dominators, 1)
    par = local_prune(g, ds.dominators, 1)
    # Parallel pruning is conflict-avoiding so can keep slightly more.
    assert len(par.dominators) <= 2 * len(seq)


def test_rounds_accounting():
    g = gen.grid_2d(6, 6)
    order, _ = degeneracy_order(g)
    ds = domset_sequential(g, order, 2)
    res = local_prune(g, ds.dominators, 2)
    assert res.local_rounds == res.phases * 4


def test_rejects_bad_inputs():
    g = gen.path_graph(6)
    with pytest.raises(GraphError):
        local_prune(g, [], 1)
    with pytest.raises(GraphError):
        local_prune(g, [0], 1)  # not dominating
    with pytest.raises(GraphError):
        local_prune(g, [0, 3], -1)


def test_radius_zero_noop():
    g = gen.path_graph(4)
    res = local_prune(g, range(4), 0)
    assert res.dominators == (0, 1, 2, 3)
    assert res.removed == 0
