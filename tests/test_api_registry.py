"""The solver registry: introspection, capability gating, extension."""

import pytest

from repro.api import (
    SolveRequest,
    SolverCapabilities,
    SolverOutput,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_request,
    solver_names,
    unregister_solver,
)
from repro.errors import SolverError
from repro.graphs import generators as gen

EXPECTED_SOLVERS = {
    "seq.wreach",
    "seq.wreach-min",
    "seq.dvorak",
    "seq.greedy",
    "seq.lp-rounding",
    "seq.exact",
    "seq.tree-exact",
    "dist.congest",
    "dist.congest-unified",
    "dist.ruling",
    "dist.parallel-greedy",
    "dist.kw-lp",
    "local.planar-cds",
}


def test_all_expected_solvers_registered():
    assert EXPECTED_SOLVERS <= set(solver_names())


def test_list_solvers_sorted_with_capabilities():
    infos = list_solvers()
    names = [i.name for i in infos]
    assert names == sorted(names)
    for info in infos:
        caps = info.capabilities
        assert caps.model in ("sequential", "LOCAL", "CONGEST_BC")
        assert caps.description
        assert caps.radius_range().startswith("[")


def test_unknown_solver_message_lists_registered():
    with pytest.raises(SolverError, match="seq.wreach"):
        get_solver("seq.sorcery")
    with pytest.raises(SolverError, match="unknown solver"):
        solve(gen.path_graph(4), 1, "nope.nope")


def test_connect_rejected_when_unsupported():
    g = gen.grid_2d(4, 4)
    with pytest.raises(SolverError, match="no connection phase"):
        solve(g, 1, "seq.greedy", connect=True)


def test_radius_range_enforced():
    g = gen.grid_2d(4, 4)
    with pytest.raises(SolverError, match="radius"):
        solve(g, 2, "local.planar-cds")
    with pytest.raises(SolverError, match="radius"):
        solve(g, 0, "dist.congest")


def test_duplicate_registration_rejected():
    with pytest.raises(SolverError, match="already registered"):

        @register_solver("seq.wreach")
        def clash(req, cache):  # pragma: no cover - never runs
            raise AssertionError


def test_custom_solver_roundtrip():
    """Users can plug in a solver and reach it through solve()."""

    @register_solver(
        "test.all-vertices",
        SolverCapabilities(model="sequential", description="every vertex joins D"),
    )
    def all_vertices(req: SolveRequest, cache) -> SolverOutput:
        return SolverOutput(dominators=tuple(range(req.graph.n)))

    try:
        g = gen.path_graph(5)
        res = solve(g, 1, "test.all-vertices", validate=True)
        assert res.dominators == (0, 1, 2, 3, 4)
        assert res.extras["valid"]
        assert "test.all-vertices" in solver_names()
    finally:
        unregister_solver("test.all-vertices")
    assert "test.all-vertices" not in solver_names()


def test_solve_request_object_form():
    g = gen.grid_2d(4, 4)
    req = SolveRequest(graph=g, radius=1, algorithm="seq.wreach", certify=True)
    res = solve_request(req)
    assert res.algorithm == "seq.wreach"
    assert res.certificate is not None
    assert res.certificate.solution_size == res.size
    assert res.wall_time_s >= 0.0


def test_tree_exact_guard():
    with pytest.raises(SolverError, match="tree"):
        solve(gen.cycle_graph(6), 1, "seq.tree-exact")


def test_result_summary_mentions_key_facts():
    g = gen.grid_2d(4, 4)
    res = solve(g, 1, "dist.congest", connect=True, certify=True)
    s = res.summary()
    assert "dist.congest" in s and "|D| =" in s and "rounds" in s
    # order-free solver: certificate is None but the note explains why
    res2 = solve(g, 1, "seq.greedy", certify=True)
    assert res2.certificate is None
    assert "certificate_note" in res2.extras
