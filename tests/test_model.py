"""Message model and word accounting."""

import pytest

from repro.distributed.model import Model, normalized_rounds, payload_words
from repro.errors import ModelViolation


def test_model_flags():
    assert Model.CONGEST_BC.broadcast_only
    assert not Model.CONGEST.broadcast_only
    assert not Model.LOCAL.broadcast_only
    assert Model.CONGEST.bounded_bandwidth
    assert Model.CONGEST_BC.bounded_bandwidth
    assert not Model.LOCAL.bounded_bandwidth


def test_scalar_payloads():
    assert payload_words(7) == 1
    assert payload_words(3.14) == 1
    assert payload_words(True) == 1
    assert payload_words(None) == 1
    assert payload_words(Model.LOCAL) == 1


def test_string_payloads():
    assert payload_words("") == 1
    assert payload_words("abc") == 1
    assert payload_words("elect") == 2  # 5 chars -> 2 words


def test_container_payloads():
    assert payload_words((1, 2, 3)) == 3
    assert payload_words([]) == 1
    assert payload_words({1: 2}) == 2
    assert payload_words(((1, 2), (3, 4))) == 4
    assert payload_words(frozenset({1, 2})) == 2


def test_custom_words_hook():
    class Blob:
        def __words__(self):
            return 17

    assert payload_words(Blob()) == 17


def test_unsizeable_payload_raises():
    class Blob:
        pass

    with pytest.raises(ModelViolation):
        payload_words(Blob())


def test_normalized_rounds():
    # Three logical rounds with max payloads 1, 5, 2 at bandwidth 2:
    # 1 + 3 + 1 rounds.
    assert normalized_rounds([1, 5, 2], 2) == 5
    assert normalized_rounds([], 1) == 0
    assert normalized_rounds([0], 1) == 1  # a silent round still ticks
    with pytest.raises(ModelViolation):
        normalized_rounds([1], 0)


def test_payload_words_memo_caches_frozen_payloads():
    memo = {}
    path = ((3, 7), (2, 9))
    payload = ("paths", (path,))
    assert payload_words(payload, memo) == 6
    assert id(path) in memo  # recursively frozen -> cached
    assert payload_words(payload, memo) == 6  # hit path


def test_payload_words_memo_never_caches_mutable_contents():
    """A tuple wrapping a list can grow; its size must be re-measured."""
    memo = {}
    buf = [1, 2, 3]
    payload = ("tag", buf)
    assert payload_words(payload, memo) == 4
    buf.extend([4, 5, 6, 7])
    assert payload_words(payload, memo) == 8
    assert id(payload) not in memo


def test_payload_words_memo_matches_plain_sizing():
    cases = [
        None,
        7,
        "active",
        ("joined", 3),
        ("paths", (((1, 2),), ((0, 5), (1, 2)))),
        (),
        {},
        {"k": (1, 2)},
        [1, (2, 3)],
        frozenset({1, 2}),
    ]
    memo = {}
    for p in cases:
        assert payload_words(p, memo) == payload_words(p)
