"""Flat-array WReach kernels vs the naive reference — exact parity.

The kernels in :mod:`repro.orders.wreach` (bit-parallel batch sweep,
epoch-stamped scalar BFS) must reproduce the definition-shaped reference
in :mod:`repro.orders.wreach_ref` *exactly*: same sets in the same
(rank-sorted) member order, same sizes, same wcol values, and the same
lexicographically-least shortest witness paths.  Any deviation is a bug
in the fast kernel, never an acceptable approximation.
"""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.graphs.build import from_edges
from repro.orders.linear_order import LinearOrder
from repro.orders import wreach as flat
from repro.orders import wreach_ref as naive
from repro.orders.degeneracy import degeneracy_order

FIXTURES = {
    "grid": lambda: gen.grid_2d(5, 4),
    "tree": lambda: rm.random_tree(60, seed=7),
    "ktree": lambda: gen.k_tree(48, 3, seed=5),
    "random": lambda: rm.gnm_random(40, 95, seed=3),
    "cycle": lambda: gen.cycle_graph(17),
    "complete": lambda: gen.complete_graph(7),
    "star": lambda: gen.star_graph(12),
}


def orders_for(g, seeds=(0, 1, 2)):
    """A structured order plus a few random ones (property-style)."""
    if g.n:
        yield degeneracy_order(g)[0]
    yield LinearOrder.identity(g.n)
    for seed in seeds:
        rng = np.random.default_rng(seed)
        yield LinearOrder.from_sequence(rng.permutation(g.n))


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("radius", [1, 2, 3])
def test_sets_sizes_wcol_parity(fixture, radius):
    g = FIXTURES[fixture]()
    for order in orders_for(g):
        assert flat.wreach_sets(g, order, radius) == naive.naive_wreach_sets(
            g, order, radius
        )
        assert np.array_equal(
            flat.wreach_sizes(g, order, radius),
            naive.naive_wreach_sizes(g, order, radius),
        )
        assert flat.wcol_of_order(g, order, radius) == naive.naive_wcol_of_order(
            g, order, radius
        )


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("radius", [1, 2, 3])
def test_path_tie_break_parity(fixture, radius):
    """Same sets AND byte-identical witness paths (Algorithm 4 tie rule)."""
    g = FIXTURES[fixture]()
    for order in orders_for(g, seeds=(0, 1)):
        wf, pf = flat.wreach_sets_with_paths(g, order, radius)
        wn, pn = naive.naive_wreach_sets_with_paths(g, order, radius)
        assert wf == wn
        assert pf == pn


@pytest.mark.parametrize("radius", [0, 1, 2, 4])
def test_restricted_bfs_discovery_order_parity(radius):
    g = FIXTURES["grid"]()
    for order in orders_for(g, seeds=(0,)):
        for root in range(g.n):
            assert flat.restricted_bfs(g, order, root, radius) == (
                naive.naive_restricted_bfs(g, order, root, radius)
            )


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
@pytest.mark.parametrize("radius", [1, 2])
def test_csr_matches_reference(fixture, radius):
    """The CSR representation carries exactly the reference sets."""
    g = FIXTURES[fixture]()
    for order in orders_for(g, seeds=(0, 1)):
        csr = flat.wreach_csr(g, order, radius)
        ns = naive.naive_wreach_sets(g, order, radius)
        assert csr.tolists() == ns
        assert len(csr.indptr) == g.n + 1
        assert np.array_equal(
            csr.sizes, naive.naive_wreach_sizes(g, order, radius)
        )
        assert csr.wcol() == naive.naive_wcol_of_order(g, order, radius)
        # Rank-sorted rows: the first member is the L-least (the
        # Theorem-5 election the vectorized domset consumer relies on).
        assert csr.least().tolist() == [order.min_of(s) for s in ns]
        for v in range(g.n):
            assert csr.row(v).tolist() == ns[v]


def test_csr_arrays_read_only_and_lists_memoized():
    g = FIXTURES["ktree"]()
    order, _ = degeneracy_order(g)
    csr = flat.wreach_csr(g, order, 2)
    assert not csr.indptr.flags.writeable
    assert not csr.members.flags.writeable
    assert csr.tolists() is csr.tolists()


def test_wreach_sets_is_thin_wrapper_over_csr():
    g = gen.k_tree(flat._SMALL_N + 100, 3, seed=7)
    order, _ = degeneracy_order(g)
    adj = flat.RankedAdjacency(g, order)
    assert flat.wreach_sets(g, order, 2, adj=adj) == flat.wreach_csr(
        g, order, 2, adj=adj
    ).tolists()


def test_batch_kernel_engages_above_small_threshold():
    """Graphs beyond the scalar fallback exercise the bit-parallel sweep."""
    g = rm.random_tree(flat._SMALL_N + 300, seed=11)
    for order in orders_for(g, seeds=(0, 1)):
        assert flat.wreach_sets(g, order, 2) == naive.naive_wreach_sets(g, order, 2)
        assert np.array_equal(
            flat.wreach_sizes(g, order, 3), naive.naive_wreach_sizes(g, order, 3)
        )
        csr = flat.wreach_csr(g, order, 2)
        assert csr.tolists() == naive.naive_wreach_sets(g, order, 2)


@pytest.mark.parametrize("radius", [1, 2, 3])
def test_paths_batch_kernel_beyond_small_threshold(radius):
    """n > _SMALL_N exercises the vectorized flat-pair path sweep."""
    g = gen.k_tree(flat._SMALL_N + 300, 3, seed=11)
    for order in orders_for(g, seeds=(0,)):
        wf, pf = flat.wreach_sets_with_paths(g, order, radius)
        wn, pn = naive.naive_wreach_sets_with_paths(g, order, radius)
        assert wf == wn
        assert pf == pn


def test_paths_multi_batch_boundaries():
    """Roots spanning several _PATH_SPAN-lane batches keep exact parity."""
    g = rm.random_tree(flat._PATH_SPAN * 2 + 77, seed=3)
    order, _ = degeneracy_order(g)
    wf, pf = flat.wreach_sets_with_paths(g, order, 3)
    wn, pn = naive.naive_wreach_sets_with_paths(g, order, 3)
    assert wf == wn
    assert pf == pn
    # Members ascend in rank even across batch boundaries.
    rank = order.rank
    for members in wf:
        ranks = [int(rank[u]) for u in members]
        assert ranks == sorted(ranks)


def test_multi_batch_boundaries():
    """Roots spanning several 512-root batches stay in rank order."""
    g = gen.k_tree(flat._WORD * flat._WORDS_MAX * 2 + 77, 3, seed=9)
    order, _ = degeneracy_order(g)
    sets = flat.wreach_sets(g, order, 2)
    assert sets == naive.naive_wreach_sets(g, order, 2)
    rank = order.rank
    for members in sets:
        ranks = [int(rank[u]) for u in members]
        assert ranks == sorted(ranks)


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_edge_cases(radius):
    cases = [
        from_edges(0, []),  # empty graph
        from_edges(1, []),  # single vertex
        from_edges(5, []),  # isolated vertices only
        from_edges(7, [(0, 1), (2, 3), (5, 6)]),  # disconnected
    ]
    for g in cases:
        for order in orders_for(g, seeds=(0,)):
            assert flat.wreach_sets(g, order, radius) == naive.naive_wreach_sets(
                g, order, radius
            )
            assert np.array_equal(
                flat.wreach_sizes(g, order, radius),
                naive.naive_wreach_sizes(g, order, radius),
            )
            csr = flat.wreach_csr(g, order, radius)
            assert csr.tolists() == naive.naive_wreach_sets(g, order, radius)
            assert np.array_equal(csr.sizes, flat.wreach_sizes(g, order, radius))
            wf, pf = flat.wreach_sets_with_paths(g, order, radius)
            wn, pn = naive.naive_wreach_sets_with_paths(g, order, radius)
            assert (wf, pf) == (wn, pn)


def test_radius_zero_and_negative_like_reference():
    g = FIXTURES["grid"]()
    order = LinearOrder.identity(g.n)
    assert flat.wreach_sets(g, order, 0) == [[v] for v in range(g.n)]
    assert flat.wcol_of_order(g, order, 0) == 1


def test_shared_adjacency_matches_fresh():
    """Passing a cached RankedAdjacency cannot change any output."""
    g = gen.k_tree(700, 3, seed=5)
    order, _ = degeneracy_order(g)
    adj = flat.RankedAdjacency(g, order)
    for reach in (1, 2, 4):
        assert flat.wreach_sets(g, order, reach, adj=adj) == flat.wreach_sets(
            g, order, reach
        )
    w1, p1 = flat.wreach_sets_with_paths(g, order, 3, adj=adj)
    w2, p2 = flat.wreach_sets_with_paths(g, order, 3)
    assert (w1, p1) == (w2, p2)


def test_mismatched_order_raises():
    from repro.errors import OrderError

    g = gen.path_graph(4)
    with pytest.raises(OrderError):
        flat.wreach_sets(g, LinearOrder.identity(5), 1)
    with pytest.raises(OrderError):
        flat.wreach_sets_with_paths(g, LinearOrder.identity(5), 1)


@pytest.fixture
def kernel_budget():
    """Save/restore the module-level kernel budget around a test."""
    saved = flat.kernel_budget_bytes()
    yield
    flat.set_kernel_budget_bytes(saved)


@pytest.mark.parametrize("budget", [1, 12_000, 96_000, 10**9])
def test_budgeted_tiling_bit_identical(budget, kernel_budget):
    """Any memory budget — down to a single mask word and a 64-root
    path batch — yields byte-identical CSR, sizes, and witness paths."""
    g = gen.k_tree(flat._SMALL_N + 400, 3, seed=5)
    order, _ = degeneracy_order(g)
    flat.set_kernel_budget_bytes(None)
    ref_csr = flat.wreach_csr(g, order, 2)
    ref_paths = flat.wreach_sets_with_paths(g, order, 2)
    flat.set_kernel_budget_bytes(budget)
    csr = flat.wreach_csr(g, order, 2)
    assert np.array_equal(csr.indptr, ref_csr.indptr)
    assert np.array_equal(csr.members, ref_csr.members)
    assert flat.wreach_sets_with_paths(g, order, 2) == ref_paths


def test_budget_bounds_mask_words(kernel_budget):
    n = flat._SMALL_N + 400
    flat.set_kernel_budget_bytes(1)
    assert flat._mask_words(n) == 1  # floor: one word, 64 roots
    flat.set_kernel_budget_bytes(None)
    assert flat._mask_words(n) == flat._WORDS_MAX
    assert flat._mask_words(10**9) == 1  # huge n squeezes the window
    assert flat._path_span(10**9) == 64
    assert flat.set_kernel_budget_bytes(None) == flat.kernel_budget_bytes()


def test_adjacency_for_wrong_order_rejected():
    from repro.errors import OrderError

    g = gen.k_tree(40, 3, seed=5)
    order_a, _ = degeneracy_order(g)
    order_b = LinearOrder.from_sequence(
        np.random.default_rng(1).permutation(g.n)
    )
    adj = flat.RankedAdjacency(g, order_a)
    with pytest.raises(OrderError):
        flat.wreach_sets(g, order_b, 2, adj=adj)
