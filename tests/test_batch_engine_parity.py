"""Batch engine vs per-node execution: bit-identical outputs and stats.

The vectorized round engine (:mod:`repro.distributed.engine`) must be
indistinguishable from the per-node reference loop for every ported
protocol: same per-vertex outputs, same logical round count, and the
same ``total_words`` / ``broadcast_words`` / ``max_payload_words`` in
every :class:`~repro.distributed.network.RoundStats` entry.  These
tests pin that contract on the paper's three bounded-expansion
workloads (grid, k-tree, random geometric) plus edge cases, and check
the heterogeneous/per-node fallback path of :class:`Network`.
"""

import numpy as np
import pytest

from repro.distributed.beh_partition import (
    HPartitionBatch,
    HPartitionNode,
    run_h_partition,
)
from repro.distributed.domset_bc import run_domset_bc, run_election
from repro.distributed.engine import BatchAlgorithm
from repro.distributed.model import Model
from repro.distributed.nd_order import (
    default_threshold,
    distributed_augmented_order,
    distributed_h_partition_order,
)
from repro.distributed.network import Network
from repro.distributed.node import NodeAlgorithm
from repro.distributed.wreach_bc import run_wreach_bc
from repro.errors import SimulationError
from repro.graphs import generators as gen
from repro.graphs import random_models as rm
from repro.graphs.build import from_edges


def _instances():
    geo, _ = rm.random_geometric(150, radius=None, seed=3)
    return [
        ("grid", gen.grid_2d(7, 9)),
        ("ktree", gen.k_tree(80, 3, seed=1)),
        ("random-BE", geo),
        ("star", gen.star_graph(6)),
        ("edgeless", from_edges(4, [])),
        ("empty", from_edges(0, [])),
    ]


def _assert_same_run(a_res, b_res):
    """Rounds and the full per-round traffic record must coincide."""
    assert a_res.rounds == b_res.rounds
    assert a_res.round_stats == b_res.round_stats  # RoundStats are frozen dataclasses
    assert a_res.total_words == b_res.total_words
    assert a_res.total_broadcast_words == b_res.total_broadcast_words
    assert a_res.max_payload_words == b_res.max_payload_words
    assert a_res.total_messages == b_res.total_messages


@pytest.mark.parametrize("name,g", _instances())
def test_h_partition_parity(name, g):
    thr = default_threshold(g)
    a_outs, a_res = run_h_partition(g, thr, engine="pernode")
    b_outs, b_res = run_h_partition(g, thr, engine="batch")
    assert a_outs == b_outs
    _assert_same_run(a_res, b_res)


@pytest.mark.parametrize("name,g", _instances())
def test_nd_order_parity(name, g):
    a = distributed_h_partition_order(g, engine="pernode")
    b = distributed_h_partition_order(g, engine="batch")
    assert np.array_equal(a.order.rank, b.order.rank)
    assert np.array_equal(a.class_ids, b.class_ids)
    assert (a.rounds, a.normalized_rounds, a.max_payload_words, a.total_words) == (
        b.rounds,
        b.normalized_rounds,
        b.max_payload_words,
        b.total_words,
    )


def test_augmented_order_parity():
    g = gen.grid_2d(6, 6)
    a = distributed_augmented_order(g, 2, engine="pernode")
    b = distributed_augmented_order(g, 2, engine="batch")
    assert np.array_equal(a.order.rank, b.order.rank)
    assert (a.rounds, a.total_words, a.max_payload_words) == (
        b.rounds,
        b.total_words,
        b.max_payload_words,
    )


@pytest.mark.parametrize("name,g", _instances())
@pytest.mark.parametrize("horizon", [0, 1, 2, 4])
def test_wreach_parity(name, g, horizon):
    oc = distributed_h_partition_order(g)
    a_outs, a_res = run_wreach_bc(g, oc.class_ids, horizon, engine="pernode")
    b_outs, b_res = run_wreach_bc(g, oc.class_ids, horizon, engine="batch")
    assert a_outs == b_outs  # WReachOutput: members, sids, stored paths
    _assert_same_run(a_res, b_res)


@pytest.mark.parametrize("name,g", _instances())
@pytest.mark.parametrize("radius", [0, 1, 2])
def test_election_and_domset_parity(name, g, radius):
    oc = distributed_h_partition_order(g)
    wouts, _ = run_wreach_bc(g, oc.class_ids, 2 * radius)
    a_outs, a_res = run_election(g, oc.class_ids, wouts, radius, engine="pernode")
    b_outs, b_res = run_election(g, oc.class_ids, wouts, radius, engine="batch")
    assert a_outs == b_outs
    _assert_same_run(a_res, b_res)

    a = run_domset_bc(g, radius, engine="pernode")
    b = run_domset_bc(g, radius, engine="batch")
    assert a.dominators == b.dominators
    assert np.array_equal(a.dominator_of, b.dominator_of)
    assert a.phase_rounds == b.phase_rounds
    assert a.phase_max_words == b.phase_max_words
    assert a.total_words == b.total_words


@pytest.mark.parametrize("name,g", _instances())
@pytest.mark.parametrize("radius", [0, 1, 2])
def test_join_and_connect_parity(name, g, radius):
    from repro.distributed.connect_bc import run_connect_bc, run_join

    oc = distributed_h_partition_order(g)
    wouts, _ = run_wreach_bc(g, oc.class_ids, 2 * radius + 1)
    eouts, _ = run_election(g, oc.class_ids, wouts, radius)
    in_domset = np.fromiter(
        (eouts[v]["in_domset"] for v in range(g.n)), dtype=bool, count=g.n
    )
    a_outs, a_res = run_join(g, radius, in_domset, wouts, engine="pernode")
    b_outs, b_res = run_join(g, radius, in_domset, wouts, engine="batch")
    assert a_outs == b_outs
    _assert_same_run(a_res, b_res)

    a = run_connect_bc(g, radius, engine="pernode")
    b = run_connect_bc(g, radius, engine="batch")
    assert a.connected_set == b.connected_set
    assert a.dominators == b.dominators
    assert a.phase_rounds == b.phase_rounds
    assert a.phase_max_words == b.phase_max_words
    assert a.total_words == b.total_words


@pytest.mark.parametrize("name,g", _instances())
@pytest.mark.parametrize("radius", [0, 1, 2])
def test_cluster_and_cover_parity(name, g, radius):
    from repro.distributed.cover_bc import run_cluster, run_cover_bc

    oc = distributed_h_partition_order(g)
    wouts, _ = run_wreach_bc(g, oc.class_ids, 2 * radius)
    a_outs, a_res = run_cluster(g, oc.class_ids, wouts, radius, engine="pernode")
    b_outs, b_res = run_cluster(g, oc.class_ids, wouts, radius, engine="batch")
    assert a_outs == b_outs
    _assert_same_run(a_res, b_res)

    a = run_cover_bc(g, radius, engine="pernode")
    b = run_cover_bc(g, radius, engine="batch")
    assert a.cover.clusters == b.cover.clusters
    assert np.array_equal(a.cover.home_cluster, b.cover.home_cluster)
    assert np.array_equal(a.cover.degree_per_vertex, b.cover.degree_per_vertex)
    assert a.routing == b.routing
    assert a.phase_rounds == b.phase_rounds
    assert a.phase_max_words == b.phase_max_words
    assert (a.rounds, a.max_payload_words, a.total_words) == (
        b.rounds,
        b.max_payload_words,
        b.total_words,
    )


@pytest.mark.parametrize("name,g", _instances())
@pytest.mark.parametrize("radius", [1, 2])
@pytest.mark.parametrize("connect", [False, True])
def test_unified_parity(name, g, radius, connect):
    from repro.distributed.unified_bc import run_unified_bc

    a = run_unified_bc(g, radius, connect=connect, engine="pernode")
    b = run_unified_bc(g, radius, connect=connect, engine="batch")
    assert a.dominators == b.dominators
    assert a.connected_set == b.connected_set
    assert np.array_equal(a.dominator_of, b.dominator_of)
    assert np.array_equal(a.levels, b.levels)
    assert (a.rounds, a.max_payload_words, a.total_words) == (
        b.rounds,
        b.max_payload_words,
        b.total_words,
    )


@pytest.mark.parametrize("wave_width", [1, 4, 997])
def test_wave_pipelining_parity(wave_width):
    """Pipelined component waves change nothing observable but time.

    Outputs AND the merged per-round traffic record must match the
    lockstep batch run exactly, for every token protocol that declares
    wave components (election, join, cluster).
    """
    from repro.distributed.connect_bc import run_connect_bc
    from repro.distributed.cover_bc import run_cover_bc

    geo, _ = rm.random_geometric(150, radius=None, seed=3)
    for g in (gen.grid_2d(7, 9), geo):
        for radius in (1, 2):
            a = run_connect_bc(g, radius, engine="batch", wave_width=0)
            b = run_connect_bc(g, radius, engine="batch", wave_width=wave_width)
            assert a.connected_set == b.connected_set
            assert a.phase_rounds == b.phase_rounds
            assert a.total_words == b.total_words

            c = run_cover_bc(g, radius, engine="batch", wave_width=0)
            d = run_cover_bc(g, radius, engine="batch", wave_width=wave_width)
            assert c.cover.clusters == d.cover.clusters
            assert c.phase_rounds == d.phase_rounds
            assert c.total_words == d.total_words


def test_wreach_parity_with_augmented_class_ids():
    """Super-ids from the augmented order (rank-sized class ids) work too."""
    g = gen.k_tree(60, 3, seed=5)
    oc = distributed_augmented_order(g, 1)
    a_outs, a_res = run_wreach_bc(g, oc.class_ids, 2, engine="pernode")
    b_outs, b_res = run_wreach_bc(g, oc.class_ids, 2, engine="batch")
    assert a_outs == b_outs
    _assert_same_run(a_res, b_res)


def test_unknown_engine_rejected():
    g = gen.path_graph(4)
    with pytest.raises(SimulationError):
        run_wreach_bc(g, np.zeros(4, dtype=np.int64), 2, engine="warp")
    with pytest.raises(SimulationError):
        run_h_partition(g, 2, engine="warp")


# ----------------------------------------------------------------------
# Deployment detection: all-batch takes the fast path, anything
# per-node (including heterogeneous mixes) falls back to the loop.
# ----------------------------------------------------------------------

class _Quiet(NodeAlgorithm):
    def on_start(self, ctx):
        self.halted = True
        return None

    def on_round(self, ctx, inbox):  # pragma: no cover - never called
        return None


class _Chatty(NodeAlgorithm):
    def on_start(self, ctx):
        return ("hi",)

    def on_round(self, ctx, inbox):
        self.halted = True
        return None


def test_batch_deployment_detected():
    g = gen.grid_2d(4, 4)
    net = Network(
        g, Model.CONGEST_BC, HPartitionBatch(), advice={"threshold": 4}
    )
    assert net.engine == "batch"
    assert isinstance(net.batch, BatchAlgorithm)
    res = net.run()
    ref = Network(
        g, Model.CONGEST_BC, lambda v: HPartitionNode(), advice={"threshold": 4}
    )
    assert ref.engine == "pernode"
    ref_res = ref.run()
    assert res.outputs == ref_res.outputs
    assert res.round_stats == ref_res.round_stats


def test_heterogeneous_deployment_falls_back_to_pernode():
    g = gen.path_graph(6)
    net = Network(
        g, Model.CONGEST_BC, lambda v: _Quiet() if v % 2 else _Chatty()
    )
    assert net.engine == "pernode"
    res = net.run()
    assert res.rounds >= 1
    # Odd vertices never spoke; even ones broadcast one 1-word tag.
    assert res.round_stats[0].broadcast_words == sum(
        1 for v in range(6) if v % 2 == 0
    )


# ----------------------------------------------------------------------
# The engine dimension of the solve() façade.
# ----------------------------------------------------------------------

def test_api_engine_flag_parity_and_rejection():
    from repro.api import solve
    from repro.api.cache import PrecomputeCache
    from repro.errors import SolverError

    g = gen.grid_2d(6, 6)
    cache = PrecomputeCache()
    per = solve(g, 1, "dist.congest", engine="pernode", cache=cache)
    bat = solve(g, 1, "dist.congest", engine="batch", cache=PrecomputeCache())
    auto = solve(g, 1, "dist.congest", cache=PrecomputeCache())
    assert per.dominators == bat.dominators == auto.dominators
    assert per.total_words == bat.total_words == auto.total_words
    assert per.extras["engine"] == "pernode"
    assert bat.extras["engine"] == "batch"
    # "auto" resolves through the measured cost model (or, without an
    # artifact, the declared preference) — either way a declared engine.
    assert auto.extras["engine"] in ("batch", "pernode")
    # The unified solver is batch-capable now; both engines agree.
    ub = solve(g, 1, "dist.congest-unified", engine="batch")
    up = solve(g, 1, "dist.congest-unified", engine="pernode")
    assert ub.dominators == up.dominators
    assert ub.total_words == up.total_words
    assert ub.extras["engine"] == "batch"
    with pytest.raises(SolverError):
        solve(g, 1, "seq.wreach", engine="batch")
    with pytest.raises(SolverError):
        solve(g, 1, "dist.congest", engine="warp")
    with pytest.raises(SolverError):
        solve(g, 1, "dist.congest-unified", engine="warp")


def test_batch_algorithm_must_size_halted():
    """Forgetting to allocate ``halted`` is an error, not a silent no-op."""
    import numpy as np

    from repro.distributed.engine import BatchEmission

    class Unsized(BatchAlgorithm):
        def on_start(self, ctx):
            return BatchEmission(
                np.arange(ctx.n, dtype=np.int64), np.ones(ctx.n, dtype=np.int64)
            )

        def on_round(self, ctx, round_index):  # pragma: no cover - never reached
            return None

    net = Network(gen.path_graph(4), Model.CONGEST_BC, Unsized())
    with pytest.raises(SimulationError, match="must size halted"):
        net.run()
