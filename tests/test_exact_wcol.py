"""Exact wcol enumeration oracle."""

import pytest

from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order
from repro.orders.exact_wcol import EXACT_WCOL_LIMIT, exact_wcol
from repro.orders.fraternal import fraternal_augmentation_order
from repro.orders.wreach import wcol_of_order


def test_path_values_and_witness():
    # Paths: wcol_1 = 2 (n >= 2) and wcol_r grows only logarithmically in
    # r (dissection orders); in particular wcol_r <= r + 1 always.
    for n in (2, 4, 6):
        for r in (1, 2, 3):
            val, order = exact_wcol(gen.path_graph(n), r)
            assert val <= min(n, r + 1)
            # The returned order must witness the value.
            assert wcol_of_order(gen.path_graph(n), order, r) == val
    assert exact_wcol(gen.path_graph(5), 1)[0] == 2


def test_complete_graph_wcol_is_n():
    for n in (3, 5):
        val, _ = exact_wcol(gen.complete_graph(n), 1)
        assert val == n  # every vertex weakly reaches all smaller ones


def test_star_wcol_2():
    # Star: order center first -> every leaf reaches only {center, self}.
    val, _ = exact_wcol(gen.star_graph(7), 2)
    assert val == 2


def test_edgeless():
    val, _ = exact_wcol(from_edges(5, []), 3)
    assert val == 1


def test_radius_zero():
    val, _ = exact_wcol(gen.cycle_graph(5), 0)
    assert val == 1


def test_heuristics_upper_bound_exact():
    """Degeneracy/fraternal orders can never beat the exact optimum."""
    graphs = [
        gen.cycle_graph(6),
        gen.grid_2d(2, 4),
        gen.complete_bipartite(2, 3),
        gen.path_graph(7),
        from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5)]),
    ]
    for g in graphs:
        for r in (1, 2, 3):
            opt, _ = exact_wcol(g, r)
            degen, _ = degeneracy_order(g)
            frat = fraternal_augmentation_order(g, r)
            assert wcol_of_order(g, degen, r) >= opt
            assert wcol_of_order(g, frat, r) >= opt
            # And they should be within a small factor on these tiny cases.
            assert wcol_of_order(g, degen, r) <= 2 * opt + 1


def test_limit_enforced():
    with pytest.raises(OrderError):
        exact_wcol(gen.path_graph(EXACT_WCOL_LIMIT + 1), 1)
    with pytest.raises(OrderError):
        exact_wcol(gen.path_graph(3), -1)
