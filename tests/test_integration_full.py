"""Whole-stack integration: every layer must agree on the same instance.

These tests chain the full machinery on a handful of instances and
check the cross-layer identities that hold by theory:

* bound chain:  scattered <= OPT,  LP <= OPT,  OPT <= any heuristic;
* sequential == distributed == unified for the same order;
* the cover's home clusters and the dominating set tell the same story
  (the home center of w IS w's elected dominator);
* connectors only ever add vertices, never break domination.
"""

import numpy as np
import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.core.covers import build_cover
from repro.core.domset import domset_by_wreach, domset_sequential
from repro.core.dvorak import domset_dvorak
from repro.core.exact import exact_domset, lp_lower_bound
from repro.core.greedy import domset_greedy
from repro.core.independence import scattered_lower_bound
from repro.core.prune import prune_dominating_set
from repro.distributed.domset_bc import run_domset_bc
from repro.distributed.nd_order import default_threshold, distributed_h_partition_order
from repro.distributed.unified_bc import run_unified_bc
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph


INSTANCES = [
    ("grid7x7", gen.grid_2d(7, 7)),
    ("delaunay90", delaunay_graph(90, seed=13)[0]),
    ("ktree60", gen.k_tree(60, 2, seed=8)),
]


@pytest.mark.parametrize("name,g", INSTANCES, ids=[n for n, _ in INSTANCES])
@pytest.mark.parametrize("radius", [1, 2])
def test_bound_chain(name, g, radius):
    from repro.orders.degeneracy import degeneracy_order

    opt, _ = exact_domset(g, radius)
    lp = lp_lower_bound(g, radius)
    scatter = scattered_lower_bound(g, radius)
    assert scatter <= opt
    assert lp <= opt + 1e-9
    order, _ = degeneracy_order(g)
    assert domset_greedy(g, radius).size >= opt
    assert domset_dvorak(g, order, radius).size >= opt
    assert domset_sequential(g, order, radius).size >= opt


@pytest.mark.parametrize("name,g", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_three_implementations_agree(name, g):
    """Sequential definition == Algorithm 1 == phased BC == unified BC."""
    radius = 2
    thr = default_threshold(g)
    oc = distributed_h_partition_order(g, thr)
    seq_def = domset_by_wreach(g, oc.order, radius)
    seq_alg = domset_sequential(g, oc.order, radius)
    dist = run_domset_bc(g, radius, oc)
    uni = run_unified_bc(g, radius, threshold=thr)
    assert seq_def.dominators == seq_alg.dominators == dist.dominators == uni.dominators
    assert np.array_equal(seq_def.dominator_of, dist.dominator_of)
    assert np.array_equal(seq_def.dominator_of, uni.dominator_of)


@pytest.mark.parametrize("name,g", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_cover_and_domset_tell_same_story(name, g):
    """home_cluster[w] == dominator_of[w]: Lemma 6 in action."""
    radius = 1
    oc = distributed_h_partition_order(g)
    cover = build_cover(g, oc.order, radius)
    ds = domset_by_wreach(g, oc.order, radius)
    assert np.array_equal(cover.home_cluster, ds.dominator_of)
    # The set of home centers IS the dominating set.
    assert set(int(h) for h in cover.home_cluster) == set(ds.dominators)


@pytest.mark.parametrize("name,g", INSTANCES, ids=[n for n, _ in INSTANCES])
def test_connectors_extend_without_breaking(name, g):
    from repro.core.connect import connect_via_minor, connect_via_wreach

    radius = 1
    oc = distributed_h_partition_order(g)
    ds = domset_sequential(g, oc.order, radius)
    pruned = prune_dominating_set(g, ds.dominators, radius)
    for base in (ds.dominators, pruned):
        for connector in (
            lambda b: connect_via_wreach(g, oc.order, b, radius).vertices,
            lambda b: connect_via_minor(g, b, radius).vertices,
        ):
            out = connector(base)
            assert set(base) <= set(out)
            assert is_connected_distance_r_dominating_set(g, out, radius)


def test_prune_then_connect_then_still_valid_end_to_end():
    """A realistic composition: Thm 9 -> LOCAL prune -> Lemma 16 connect."""
    from repro.core.connect import connect_via_minor
    from repro.distributed.prune_local import local_prune

    g, _ = delaunay_graph(150, seed=21)
    radius = 2
    dist = run_domset_bc(g, radius)
    pr = local_prune(g, dist.dominators, radius)
    conn = connect_via_minor(g, pr.dominators, radius)
    assert is_connected_distance_r_dominating_set(g, conn.vertices, radius)
    # The composition should beat the unpruned connected set size.
    conn_raw = connect_via_minor(g, dist.dominators, radius)
    assert conn.size <= conn_raw.size
