"""Theorem 8: distributed covers match the sequential Theorem 4 covers."""

import numpy as np
import pytest

from repro.analysis.validate import validate_cover
from repro.core.covers import build_cover
from repro.distributed.cover_bc import run_cover_bc
from repro.distributed.nd_order import distributed_h_partition_order
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph


@pytest.mark.parametrize("radius", [1, 2])
def test_distributed_cover_equals_sequential(medium_graph, radius):
    g = medium_graph
    oc = distributed_h_partition_order(g)
    dist = run_cover_bc(g, radius, oc)
    seq = build_cover(g, oc.order, radius)
    assert dist.cover.clusters == seq.clusters
    assert np.array_equal(dist.cover.home_cluster, seq.home_cluster)
    assert np.array_equal(dist.cover.degree_per_vertex, seq.degree_per_vertex)


@pytest.mark.parametrize("radius", [1, 2])
def test_distributed_cover_is_valid(radius):
    g, _ = delaunay_graph(70, seed=9)
    dist = run_cover_bc(g, radius)
    assert validate_cover(g, dist.cover) == []


def test_routing_paths_stay_in_cluster():
    """Lemma 7: the path from w to center v lies inside X_v."""
    g = gen.grid_2d(6, 6)
    res = run_cover_bc(g, 1)
    clusters = res.cover.clusters
    for v in range(g.n):
        for center, path in res.routing[v].items():
            members = set(clusters[center])
            assert all(x in members for x in path)


def test_rounds_accounted():
    g = gen.grid_2d(5, 5)
    res = run_cover_bc(g, 2)
    assert res.rounds >= 2 * 2  # at least the wreach phase
    assert res.total_words > 0


def test_radius_zero_cover():
    g = gen.path_graph(4)
    res = run_cover_bc(g, 0)
    assert all(ms == (v,) for v, ms in res.cover.clusters.items())
