"""Lenzen-style planar MDS (constant LOCAL rounds)."""


from repro.analysis.validate import is_distance_r_dominating_set
from repro.core.exact import exact_domset
from repro.distributed.lenzen import GATHER_RADIUS, lenzen_planar_mds
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.graphs.random_models import delaunay_graph, random_tree


def _planar_zoo():
    return [
        ("grid6x6", gen.grid_2d(6, 6)),
        ("tri5x5", gen.triangular_grid(5, 5)),
        ("hex4x8", gen.hex_grid(4, 8)),
        ("tree", random_tree(40, seed=1)),
        ("delaunay", delaunay_graph(70, seed=2)[0]),
        ("outerplanar", gen.maximal_outerplanar(25, seed=3)),
    ]


def test_output_dominates():
    for name, g in _planar_zoo():
        res = lenzen_planar_mds(g)
        assert is_distance_r_dominating_set(g, res.dominators, 1), name


def test_constant_rounds():
    for name, g in _planar_zoo():
        res = lenzen_planar_mds(g)
        assert res.rounds == GATHER_RADIUS, name


def test_constant_factor_on_planar_instances():
    """Measured approximation factor stays small (paper: O(1) on planar)."""
    for name, g in _planar_zoo():
        res = lenzen_planar_mds(g)
        opt, _ = exact_domset(g, 1)
        assert res.size <= 6 * max(opt, 1), (name, res.size, opt)


def test_d1_d2_partition_output():
    g = gen.grid_2d(5, 5)
    res = lenzen_planar_mds(g)
    assert set(res.dominators) == set(res.d1) | set(res.d2)


def test_star_single_dominator():
    g = gen.star_graph(10)
    res = lenzen_planar_mds(g)
    # The center dominates everything; phase 2 elects it (max span).
    assert res.dominators == (0,)


def test_d1_rule_on_known_graph():
    # On a long path, every interior vertex's neighborhood {v-1, v+1} is
    # covered by the pair (v-1, v+1) themselves; no vertex joins D1.
    g = gen.path_graph(12)
    res = lenzen_planar_mds(g)
    assert res.d1 == ()
    assert is_distance_r_dominating_set(g, res.dominators, 1)


def test_isolated_vertices_self_elect():
    g = from_edges(5, [(0, 1)])
    res = lenzen_planar_mds(g)
    assert {2, 3, 4} <= set(res.dominators)
    assert is_distance_r_dominating_set(g, res.dominators, 1)


def test_oracle_equals_messages_small():
    g = gen.grid_2d(4, 4)
    a = lenzen_planar_mds(g, mode="oracle")
    b = lenzen_planar_mds(g, mode="messages")
    assert a.dominators == b.dominators


def test_deterministic():
    g, _ = delaunay_graph(50, seed=4)
    assert lenzen_planar_mds(g).dominators == lenzen_planar_mds(g).dominators
