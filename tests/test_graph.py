"""Unit tests for the CSR Graph structure."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.build import empty_graph, from_edges
from repro.graphs.graph import Graph


def test_from_edges_basic():
    g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
    assert g.n == 4
    assert g.m == 3
    assert g.degree(0) == 1
    assert g.degree(1) == 2
    assert list(g.neighbors(1)) == [0, 2]


def test_from_edges_deduplicates():
    g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
    assert g.m == 1


def test_from_edges_rejects_self_loop():
    with pytest.raises(GraphError):
        from_edges(3, [(1, 1)])


def test_from_edges_rejects_out_of_range():
    with pytest.raises(GraphError):
        from_edges(3, [(0, 3)])
    with pytest.raises(GraphError):
        from_edges(3, [(-1, 0)])


def test_empty_graph():
    g = empty_graph(5)
    assert g.n == 5
    assert g.m == 0
    assert g.max_degree() == 0
    assert g.average_degree() == 0.0
    assert list(g.edges()) == []


def test_zero_vertex_graph():
    g = empty_graph(0)
    assert g.n == 0
    assert len(g) == 0
    assert g.degree_histogram() == {}


def test_adjacency_sorted():
    g = from_edges(5, [(4, 0), (2, 0), (0, 1), (3, 0)])
    assert list(g.neighbors(0)) == [1, 2, 3, 4]


def test_has_edge():
    g = from_edges(4, [(0, 1), (2, 3)])
    assert g.has_edge(0, 1) and g.has_edge(1, 0)
    assert not g.has_edge(0, 2)
    assert not g.has_edge(1, 1)


def test_edges_iteration_each_once():
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    g = from_edges(4, edges)
    out = list(g.edges())
    assert sorted(out) == sorted((min(u, v), max(u, v)) for u, v in edges)
    assert all(u < v for u, v in out)


def test_edge_array_matches_edges():
    g = from_edges(6, [(0, 5), (2, 4), (1, 3), (3, 5)])
    arr = g.edge_array()
    assert sorted(map(tuple, arr.tolist())) == sorted(g.edges())


def test_edge_array_empty():
    assert empty_graph(3).edge_array().shape == (0, 2)


def test_degrees_array():
    g = from_edges(3, [(0, 1), (1, 2)])
    assert g.degrees().tolist() == [1, 2, 1]


def test_subgraph_induced():
    g = from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
    h, mapping = g.subgraph([0, 1, 2])
    assert h.n == 3
    assert h.m == 2  # edges (0,1) and (1,2); (0,4)/(3,4) dropped
    assert mapping.tolist() == [0, 1, 2]


def test_subgraph_relabels():
    g = from_edges(5, [(2, 4)])
    h, mapping = g.subgraph([2, 4])
    assert h.n == 2
    assert h.has_edge(0, 1)
    assert mapping.tolist() == [2, 4]


def test_subgraph_out_of_range():
    g = from_edges(3, [(0, 1)])
    with pytest.raises(GraphError):
        g.subgraph([0, 7])


def test_subgraph_deduplicates_input():
    g = from_edges(3, [(0, 1), (1, 2)])
    h, mapping = g.subgraph([1, 1, 0])
    assert h.n == 2
    assert mapping.tolist() == [0, 1]


def test_copy_with_edges_removed():
    g = from_edges(4, [(0, 1), (1, 2), (2, 3)])
    h = g.copy_with_edges_removed([(1, 2)])
    assert h.m == 2
    assert not h.has_edge(1, 2)
    # Removal accepts either endpoint order.
    h2 = g.copy_with_edges_removed([(2, 1)])
    assert h2 == h


def test_equality_and_hash():
    g1 = from_edges(3, [(0, 1), (1, 2)])
    g2 = from_edges(3, [(1, 2), (0, 1)])
    g3 = from_edges(3, [(0, 1)])
    assert g1 == g2
    assert hash(g1) == hash(g2)
    assert g1 != g3
    assert g1 != "not a graph"


def test_validation_rejects_bad_indptr():
    with pytest.raises(GraphError):
        Graph(np.array([0, 2, 1]), np.array([1, 0], dtype=np.int32))


def test_validation_rejects_unsorted_adjacency():
    indptr = np.array([0, 2, 3, 4], dtype=np.int64)
    indices = np.array([2, 1, 0, 0], dtype=np.int32)  # row 0 unsorted
    with pytest.raises(GraphError):
        Graph(indptr, indices)


def test_validation_rejects_self_loop_in_csr():
    indptr = np.array([0, 1, 2], dtype=np.int64)
    indices = np.array([0, 0], dtype=np.int32)  # 0 adjacent to itself
    with pytest.raises(GraphError):
        Graph(indptr, indices)


def test_immutable_arrays():
    g = from_edges(3, [(0, 1)])
    with pytest.raises(ValueError):
        g.indices[0] = 2


def test_degree_histogram():
    g = from_edges(4, [(0, 1), (0, 2), (0, 3)])
    assert g.degree_histogram() == {1: 3, 3: 1}


def test_average_and_max_degree():
    g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    assert g.average_degree() == pytest.approx(2.0)
    assert g.max_degree() == 2


def test_adjacency_lists_roundtrip():
    g = from_edges(3, [(0, 1), (1, 2)])
    assert g.adjacency_lists() == [[1], [0, 2], [1]]


def test_subgraph_empty_selection():
    g = gen.grid_2d(3, 3)
    h, mapping = g.subgraph([])
    assert h.n == 0 and h.m == 0
    assert mapping.tolist() == []


def test_subgraph_full_selection_roundtrip():
    g = gen.grid_2d(4, 5)
    h, mapping = g.subgraph(range(g.n))
    assert h == g
    assert mapping.tolist() == list(range(g.n))


def test_subgraph_isolated_and_validated():
    # Selection mixing connected pairs and isolated vertices; rows must
    # stay strictly sorted so full Graph validation passes.
    g = gen.grid_2d(5, 5)
    nodes = [0, 1, 7, 13, 24]
    h, mapping = g.subgraph(nodes)
    h2 = Graph(h.indptr.copy(), h.indices.copy())  # re-validate
    assert h2 == h
    assert mapping.tolist() == sorted(nodes)
    for i, u in enumerate(mapping):
        for j, v in enumerate(mapping):
            assert h.has_edge(i, j) == g.has_edge(int(u), int(v))
