"""Million-vertex end-to-end: ingest → warm → solve (marker: ``large``).

Skipped unless ``--run-large`` is passed; CI runs these in a separate
non-blocking job.  The point is that nothing in the pipeline — streaming
ingest, npz edge lists, the artifact store in mmap mode, the orientation
tier, the budget-tiled wreach kernel — silently assumes small ``n``.
"""

import numpy as np
import pytest

from repro.api import ArtifactStore, graph_digest, order_digest
from repro.core.domset import domset_by_wreach
from repro.core.rdomset_orient import rdomset_orient
from repro.graphs.build import from_edges, from_edges_stream
from repro.graphs.io import read_edge_npz, write_edge_npz
from repro.orders.degeneracy import degeneracy_order
from repro.orders.wreach import RankedAdjacency, wreach_csr

pytestmark = pytest.mark.large

SIDE = 1000  # SIDE x SIDE grid: 10^6 vertices, ~2 * 10^6 edges


def _grid_edges(a: int, b: int) -> np.ndarray:
    """Vectorized grid edge list (generators.grid_2d loops in Python)."""
    ids = np.arange(a * b, dtype=np.int64).reshape(a, b)
    horiz = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vert = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    return np.concatenate([horiz, vert])


@pytest.fixture(scope="module")
def big_grid():
    edges = _grid_edges(SIDE, SIDE)
    n = SIDE * SIDE
    chunks = [edges[i : i + 1 << 20] for i in range(0, len(edges), 1 << 20)]
    g = from_edges_stream(n, chunks)
    assert g.n == n and g.m == len(edges)
    return g, edges


def test_stream_matches_from_edges_at_scale(big_grid):
    g, edges = big_grid
    ref = from_edges(g.n, edges)
    assert np.array_equal(g.indptr, ref.indptr)
    assert np.array_equal(g.indices, ref.indices)


def test_npz_roundtrip_at_scale(tmp_path, big_grid):
    g, _ = big_grid
    path = tmp_path / "grid1000.npz"
    write_edge_npz(g, path)
    g2 = read_edge_npz(path)
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.indices, g.indices)


def test_warm_mmap_solve_end_to_end(tmp_path, big_grid):
    g, _ = big_grid
    store = ArtifactStore(tmp_path)
    gd = store.put_graph(g)
    order, _ = degeneracy_order(g)
    od = order_digest(order)
    store.put_order(gd, "degeneracy", 2, order)
    adj = RankedAdjacency(g, order)
    store.put_rank_adj(gd, od, adj)
    csr = wreach_csr(g, order, 1, adj=adj)
    store.put_wreach(gd, od, 1, csr)

    mm = ArtifactStore(tmp_path, mmap=True)
    g2 = mm.get_graph(gd)
    assert g2 is not None and isinstance(g2.indices, np.memmap)
    assert graph_digest(g2) == gd  # mapped bytes ARE the stored bytes
    o2 = mm.get_order(gd, "degeneracy", 2, n=g.n)
    a2 = mm.get_rank_adj(gd, od, g2, o2)
    c2 = mm.get_wreach(gd, od, 1, g2, o2)

    orient = rdomset_orient(g2, o2, 2, adj=a2)
    ref_orient = rdomset_orient(g, order, 2, adj=adj)
    assert orient.dominators == ref_orient.dominators

    dom = domset_by_wreach(g2, o2, 1, csr=c2)
    ref_dom = domset_by_wreach(g, order, 1, csr=csr)
    assert dom.dominators == ref_dom.dominators

    # Distance-1 validity, vectorized (BFS validators are too slow here):
    # every vertex is a dominator or adjacent to one.
    in_set = np.zeros(g.n, dtype=bool)
    in_set[np.asarray(dom.dominators)] = True
    covered = in_set | np.logical_or.reduceat(
        np.append(in_set[g.indices], False), np.minimum(g.indptr[:-1], len(g.indices))
    ) & (np.diff(g.indptr) > 0)
    assert bool(np.all(covered))
