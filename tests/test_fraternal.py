"""Transitive-fraternal augmentation orders."""

import pytest

from repro.errors import OrderError
from repro.graphs import generators as gen
from repro.graphs.build import from_edges
from repro.orders.degeneracy import degeneracy_order
from repro.orders.fraternal import (
    augmentation_out_degrees,
    fraternal_augmentation_order,
    orient_acyclic,
)
from repro.orders.wreach import wcol_of_order


def test_orient_acyclic_out_degree_bounded_by_degeneracy(small_graph):
    g = small_graph
    order, d = degeneracy_order(g)
    arcs = orient_acyclic(g, order)
    assert max((len(a) for a in arcs), default=0) <= max(d, 0)
    # Every edge oriented exactly once.
    assert sum(len(a) for a in arcs) == g.m


def test_orient_acyclic_points_to_smaller():
    from repro.orders.linear_order import LinearOrder

    g = gen.path_graph(4)
    order = LinearOrder.identity(4)
    arcs = orient_acyclic(g, order)
    for v in range(4):
        for u, length in arcs[v]:
            assert u < v
            assert length == 1


def test_fraternal_order_is_permutation(small_graph):
    g = small_graph
    order = fraternal_augmentation_order(g, 3)
    assert sorted(order.by_rank.tolist()) == list(range(g.n))


def test_fraternal_rejects_radius_zero():
    with pytest.raises(OrderError):
        fraternal_augmentation_order(gen.path_graph(3), 0)


def test_fraternal_wcol_no_worse_than_random(medium_graph):
    """The theory-motivated order should beat a random one on wcol."""
    from repro.orders.heuristics import random_order

    g = medium_graph
    r = 2
    frat = fraternal_augmentation_order(g, 2 * r)
    rand = random_order(g, seed=42)
    assert wcol_of_order(g, frat, 2 * r) <= wcol_of_order(g, rand, 2 * r)


def test_fraternal_radius_one_close_to_degeneracy():
    g = gen.grid_2d(8, 8)
    order = fraternal_augmentation_order(g, 1)
    # wcol_1 = max smaller-neighbors + 1; close to degeneracy + 1.
    assert wcol_of_order(g, order, 1) <= 4


def test_augmentation_out_degrees_bounded_on_grid():
    g = gen.grid_2d(10, 10)
    for r in (1, 2, 3):
        degs = augmentation_out_degrees(g, r)
        assert len(degs) == g.n
        # Planar-grid augmentations stay sparse.
        assert degs.max() <= 30


def test_augmentation_grows_with_radius():
    g = gen.grid_2d(8, 8)
    d1 = augmentation_out_degrees(g, 1).sum()
    d3 = augmentation_out_degrees(g, 3).sum()
    assert d3 >= d1


def test_empty_graph():
    g = from_edges(0, [])
    order = fraternal_augmentation_order(g, 2)
    assert len(order) == 0
    assert len(augmentation_out_degrees(g, 2)) == 0


def test_deterministic(medium_graph):
    g = medium_graph
    assert fraternal_augmentation_order(g, 2) == fraternal_augmentation_order(g, 2)
