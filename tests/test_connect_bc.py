"""Theorem 10: distributed connected dominating set."""

import pytest

from repro.analysis.validate import is_connected_distance_r_dominating_set
from repro.core.domset import domset_by_wreach
from repro.distributed.connect_bc import run_connect_bc
from repro.distributed.nd_order import distributed_h_partition_order
from repro.graphs import generators as gen
from repro.graphs.random_models import delaunay_graph, random_tree
from repro.orders.wreach import wcol_of_order


def _connected_zoo():
    return [
        ("grid6x7", gen.grid_2d(6, 7)),
        ("tree", random_tree(50, seed=4)),
        ("delaunay", delaunay_graph(60, seed=6)[0]),
        ("hex", gen.hex_grid(5, 8)),
    ]


@pytest.mark.parametrize("radius", [1, 2])
def test_connected_and_dominating(radius):
    for name, g in _connected_zoo():
        res = run_connect_bc(g, radius)
        assert is_connected_distance_r_dominating_set(
            g, res.connected_set, radius
        ), name


@pytest.mark.parametrize("radius", [1, 2])
def test_contains_dominators(radius):
    for name, g in _connected_zoo():
        res = run_connect_bc(g, radius)
        assert set(res.dominators) <= set(res.connected_set), name


def test_dominators_match_sequential():
    g = gen.grid_2d(6, 6)
    oc = distributed_h_partition_order(g)
    res = run_connect_bc(g, 1, oc)
    seq = domset_by_wreach(g, oc.order, 1)
    assert res.dominators == seq.dominators


@pytest.mark.parametrize("radius", [1, 2])
def test_size_bound(radius):
    """|D'| <= c' * (2r + 2) * |D| with measured c' (Corollary 13)."""
    for name, g in _connected_zoo():
        oc = distributed_h_partition_order(g)
        res = run_connect_bc(g, radius, oc)
        c_prime = wcol_of_order(g, oc.order, 2 * radius + 1)
        assert res.size <= c_prime * (2 * radius + 2) * len(res.dominators), name


def test_phase_structure():
    g = gen.grid_2d(5, 5)
    radius = 2
    res = run_connect_bc(g, radius)
    assert res.phase_rounds["wreach"] == 2 * radius + 1
    assert res.phase_rounds["join"] <= 2 * radius + 1
    assert set(res.phase_max_words) == {"order", "wreach", "election", "join"}
    assert res.total_rounds == sum(res.phase_rounds.values())


def test_blowup_reported():
    g = gen.grid_2d(5, 5)
    res = run_connect_bc(g, 1)
    assert res.blowup == pytest.approx(res.size / len(res.dominators))


def test_negative_radius_rejected():
    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        run_connect_bc(gen.path_graph(3), -1)
